(** Closure-compiling interpreter for the C subset.

    Each expression compiles to a [frame -> value] closure with slot-resolved
    variable access and type-specialized arithmetic, fast enough to execute
    the evaluation workloads at realistic (scaled) sizes.  Every operation
    bumps the {!Cost} counters; memory accesses go through the {!Cache}
    simulator; [#pragma omp parallel for] loops record one cost snapshot per
    iteration into the {!Trace} profile. *)

open Cfront
open Support

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun m -> raise (Unsupported m)) fmt

(* ------------------------------------------------------------------ *)
(* Runtime state *)

type vec_mode = Scalar | Auto_vec | Pragma_vec

(** Execution variant, fixed at plan time — the closure compiler
    specializes on it once, so the emitted code carries no mode branches:

    - [Modeled]: the instrumented engine.  Every operation bumps {!Cost}
      counters and every memory access drives the {!Cache} simulator.
    - [Traced]: [Modeled] plus per-access logs inside parallel loops for
      the race detector (never dispatches to the pool).
    - [Fast]: typed unboxed closures with no instrumentation at all —
      same output, same return code, same faults, same parallel dispatch
      and reduction merge, an order of magnitude faster.  Selected by
      [purec run --no-model] and the fuzz oracle's differential configs. *)
type instr = Modeled | Traced | Fast

(** Per-execution-stream interpreter state.  Stream 0 is the master — the
    sequential instruction stream of the program; streams 1.. belong to the
    domain pool's workers and are only active inside a dispatched
    [#pragma omp parallel for].  Each stream owns its cost counters, its own
    L1/L2 cache simulator instance (per-core caches, truer to the modeled
    machine than a shared simulator would be), its output buffer and its
    vectorization mode, so parallel loop bodies never contend on hot
    interpreter state.  Worker results are merged into the master
    deterministically at the join (see [exec_parallel]). *)
type dstate = {
  ds_slot : int;  (** stream id: 0 = master, 1.. = pool workers *)
  ds_counters : Cost.t;
  ds_cache : Cache.t;
  mutable ds_out : Buffer.t;
      (** master: the program's output; workers: the current chunk's
          private buffer, spliced into the master in iteration order *)
  mutable ds_vec_mode : vec_mode;
}

type rt = {
  states : dstate array;  (** [states.(0)] = master; length = 1 + pool size *)
  dls : dstate Domain.DLS.key;
      (** the stream the current domain executes; compiled closures resolve
          their state through this at run time *)
  pool : Runtime.Pool.t option;  (** [Some p] enables real parallel dispatch *)
  alloc : Mem.allocator;  (** shared: internally synchronized *)
  mutable segments : Trace.segment list;  (** reversed; master-only *)
  mutable seg_start : Cost.t;
  mutable in_parallel : bool;
  instr : instr;
      (** the execution variant every closure of this runtime was compiled
          for; immutable, so specialization decisions made at compile time
          stay valid for the runtime's whole life *)
  trace_accesses : bool;
      (** = [instr = Traced]: record per-access logs inside parallel loops *)
  shadow_slots : bool;
      (** shadow function-local frame slots as addressable {!Mem} regions so
          the race detector sees local-scalar accesses too (closes the
          register blind spot for shared enclosing-scope scalars) *)
  mutable access_log : Trace.access list ref option;
      (** the current parallel iteration's buffer; [None] outside parallel
          loops or when tracing is off *)
  mutable par_traces : Trace.par_trace list;  (** reversed, with segments *)
  tile_grain : bool;
      (** dispatch multi-loop (tiled/skewed) nest bodies at the granularity
          of the annotated loop — whole tiles become pool jobs — and record
          nested point-iteration structure into {!Trace.par_trace.pt_points};
          off = PR-3 behaviour (only single-statement canonical bodies
          parallelize, traces stay flat) *)
  mutable rec_points : int list ref option;
      (** while recording one parallel iteration with [tile_grain]: reversed
          list of access offsets where each depth-1 point-iteration child
          begins; [None] outside recording *)
  mutable rec_depth : int;
      (** loop depth below the recorded parallel iteration's body (0 = the
          body itself, so its immediate child loop marks points) *)
  mutable rec_nacc : int;  (** accesses logged so far in the current
                               parallel iteration *)
  mutable held_locks : int list;
      (** {!Runtime.Locks} ids of the [critical]/[atomic] sections the
          recording (sequential) execution is currently inside, sorted
          ascending; stamped into every logged access.  Only maintained
          when [trace_accesses] — traced runs never dispatch to the pool,
          so a single field is race-free — while real parallel execution
          relies on the actual mutexes instead. *)
  mutable insp_log : Trace.insp_verdict list;
      (** reversed inspector verdicts, one per execution of a
          runtime-checked parallel loop; master-only like [segments] *)
}

(* Census of runtimes ever created.  Every [rt] owns its DLS key, allocator,
   output buffers, and per-site promotion memos, so this counter is the
   serve daemon's isolation invariant made observable: it must grow by at
   least one per executed request ([{"cmd":"stats"}] reports it, the serve
   suite asserts on it) — a stagnating census would mean two requests
   shared mutable interpreter state. *)
let rt_census = Atomic.make 0

let rts_created () = Atomic.get rt_census

(* Fast-variant sub-census: how many of the runtimes above skipped
   instrumentation entirely.  The serve stats reply reports it so a warm
   daemon's --no-model traffic is observable separately. *)
let rt_census_fast = Atomic.make 0

let rts_created_fast () = Atomic.get rt_census_fast

(* Inspector verdict census across every runtime ever created: how many
   runtime-checked loop executions found their footprints disjoint (and
   were eligible for parallel dispatch) vs conflicting (and fell back to
   sequential execution).  The serve daemon's [stats] reply reports both,
   and the inspector suite asserts on their movement. *)
let insp_disjoint_census = Atomic.make 0

let insp_conflict_census = Atomic.make 0

let insp_disjoint_total () = Atomic.get insp_disjoint_census

let insp_conflict_total () = Atomic.get insp_conflict_census

let create_rt ?l1_bytes ?l2_bytes ?(instr = Modeled) ?(shadow_slots = false)
    ?(tile_grain = true) ?pool () =
  Atomic.incr rt_census;
  if instr = Fast then Atomic.incr rt_census_fast;
  let mk_dstate slot =
    let counters = Cost.create () in
    {
      ds_slot = slot;
      ds_counters = counters;
      ds_cache = Cache.create ?l1_bytes ?l2_bytes counters;
      ds_out = Buffer.create 256;
      ds_vec_mode = Scalar;
    }
  in
  let streams = match pool with None -> 1 | Some p -> 1 + Runtime.Pool.size p in
  let states = Array.init streams mk_dstate in
  {
    states;
    dls = Domain.DLS.new_key (fun () -> states.(0));
    pool;
    alloc = Mem.create_allocator ();
    segments = [];
    seg_start = Cost.create ();
    in_parallel = false;
    instr;
    trace_accesses = (instr = Traced);
    shadow_slots;
    access_log = None;
    par_traces = [];
    tile_grain;
    rec_points = None;
    rec_depth = 0;
    rec_nacc = 0;
    held_locks = [];
    insp_log = [];
  }

let master rt = rt.states.(0)

let n_streams rt = Array.length rt.states

(** The executing domain's stream.  [Domain.DLS] rather than a mutable
    [rt] field because compiled closures are shared verbatim between
    domains: the same closure must find the master state on the main domain
    and a worker state inside a dispatched chunk. *)
let[@inline] cur rt = Domain.DLS.get rt.dls

let[@inline] is_fast rt = rt.instr = Fast

(** Reset every piece of per-run mutable state so a loaded program can be
    executed again on the same runtime.  This is the single reset site used
    by both the one-shot CLI path ([Exec.run_main]) and the serve daemon —
    a new piece of run state added here cannot be forgotten in one of
    them. *)
let reset_rt rt =
  Array.iter
    (fun ds ->
      Cost.reset ds.ds_counters;
      Cache.reset_all ds.ds_cache;
      Buffer.clear ds.ds_out;
      ds.ds_vec_mode <- Scalar)
    rt.states;
  rt.segments <- [];
  rt.seg_start <- Cost.create ();
  rt.in_parallel <- false;
  rt.access_log <- None;
  rt.par_traces <- [];
  rt.rec_points <- None;
  rt.rec_depth <- 0;
  rt.rec_nacc <- 0;
  rt.held_locks <- [];
  rt.insp_log <- []

type frame = Mem.value array

exception Return_v of Mem.value

exception Break_e

exception Continue_e

(* ------------------------------------------------------------------ *)
(* Compile-time environment *)

type global_cell =
  | GScalar of { cell : Mem.value ref; addr : int }
  | GArray of { view : Mem.ptr }

type func_entry = {
  fe_def : Ast.func;
  mutable fe_run : (Mem.value array -> Mem.value) option;
  mutable fe_fast : (Mem.value array -> Mem.value) option;
      (** fast-variant entry point taking the {e callee frame} directly:
          the caller allocates [fe_nslots] slots and fills the parameter
          prefix, skipping the argv copy of [fe_run] *)
  mutable fe_nslots : int;
}

(** Lexical shadow-slot context, set while compiling the components of a
    [#pragma omp parallel for].  A frame slot created {e before} the pragma
    ([slot < sx_limit]) holds an enclosing-scope scalar that real OpenMP
    would share between threads — those accesses must reach the race
    detector.  Slots created inside the loop body, the induction variable
    and [private(...)] clause names are privatized and stay registers. *)
type shadow_ctx = {
  sx_limit : int;  (** [cenv.nslots] at the pragma *)
  sx_private : (int, unit) Hashtbl.t;  (** privatized slots *)
}

type cenv = {
  tenv : Sema.Env.t;
  funcs : (string, func_entry) Hashtbl.t;
  globals : (string, global_cell * Ast.ctype) Hashtbl.t;
  rt : rt;
  mutable scope : (string * (int * Ast.ctype)) list;  (** name -> slot, type *)
  mutable nslots : int;
  mutable shadow_ctx : shadow_ctx option;  (** inside an omp loop, if shadowing *)
  mutable cur_fun : int;  (** ordinal of the function being compiled *)
  shadow_addrs : (int * int, int * int) Hashtbl.t;
      (** (function ordinal, slot) -> (shadow addr, bytes); slot numbers
          restart per function, so the key must carry the function *)
}

let fresh_slot cenv name ty =
  let slot = cenv.nslots in
  cenv.nslots <- cenv.nslots + 1;
  cenv.scope <- (name, (slot, ty)) :: cenv.scope;
  slot

let lookup_local cenv name = List.assoc_opt name cenv.scope

(* ------------------------------------------------------------------ *)
(* Type plumbing *)

let rec resolve cenv ty = Sema.Env.resolve cenv.tenv ty |> strip_quals cenv

and strip_quals _cenv ty = ty

let scalar_bytes = function
  | Ast.Char -> 1
  | Ast.Int -> 4
  | Ast.Float -> 4
  | Ast.Double -> 8
  | Ast.Ptr _ -> 8
  | Ast.Void -> 1
  | Ast.Array _ | Ast.Struct _ | Ast.Named _ -> 8

let rec type_bytes cenv ty =
  match resolve cenv ty with
  | Ast.Array (elt, Some n) -> n * type_bytes cenv elt
  | t -> scalar_bytes t

let is_floaty = function Ast.Float | Ast.Double -> true | _ -> false

(* Arithmetic result type *)
let promote a b =
  match (a, b) with
  | Ast.Double, _ | _, Ast.Double -> Ast.Double
  | Ast.Float, _ | _, Ast.Float -> Ast.Float
  | _ -> Ast.Int

(* Subscript typing: one subscript on T[N][M] yields a T[M] view that skips
   M flat elements per index; one subscript on T* / T[N] yields a T value. *)
let subscript_info cenv ty =
  (* returns (result_type, elements_per_index, result_is_view) *)
  match resolve cenv ty with
  | Ast.Array (elt, _) | Ast.Ptr { elt; _ } -> (
    let elt = resolve cenv elt in
    match elt with
    | Ast.Array _ ->
      let rec flat t =
        match resolve cenv t with Ast.Array (e, Some n) -> n * flat e | _ -> 1
      in
      (elt, flat elt, true)
    | _ -> (elt, 1, false))
  | t -> unsupported "subscript on non-array type %s" (Ast_printer.type_to_string t)

(* ------------------------------------------------------------------ *)
(* Cost helpers (inlined into closures) *)

(* All cost helpers resolve the executing stream through [cur] at run time:
   the same compiled closure charges the master's counters when run
   sequentially and a worker's counters inside a dispatched chunk. *)

let[@inline] bump_int rt =
  let c = (cur rt).ds_counters in
  c.Cost.int_ops <- c.Cost.int_ops + 1

let[@inline] bump_int_n rt n =
  let c = (cur rt).ds_counters in
  c.Cost.int_ops <- c.Cost.int_ops + n

let[@inline] bump_branch rt =
  let c = (cur rt).ds_counters in
  c.Cost.branches <- c.Cost.branches + 1

let[@inline] bump_load c = c.Cost.loads <- c.Cost.loads + 1

let[@inline] bump_store c = c.Cost.stores <- c.Cost.stores + 1

let[@inline] bump_extra rt n =
  let c = (cur rt).ds_counters in
  c.Cost.extra_cycles <- c.Cost.extra_cycles + n

(* builtin call: one call plus a latency weight *)
let[@inline] bump_builtin rt w =
  let c = (cur rt).ds_counters in
  c.Cost.builtin_calls <- c.Cost.builtin_calls + 1;
  c.Cost.extra_cycles <- c.Cost.extra_cycles + w

let[@inline] bump_user_call rt overhead =
  let c = (cur rt).ds_counters in
  c.Cost.calls <- c.Cost.calls + 1;
  c.Cost.extra_cycles <- c.Cost.extra_cycles + overhead

let[@inline] bump_vec ds n =
  match ds.ds_vec_mode with
  | Scalar -> ()
  | Auto_vec -> ds.ds_counters.Cost.flops_autovec <- ds.ds_counters.Cost.flops_autovec + n
  | Pragma_vec ->
    ds.ds_counters.Cost.flops_pragma_vec <- ds.ds_counters.Cost.flops_pragma_vec + n

let[@inline] bump_fadd rt =
  let ds = cur rt in
  ds.ds_counters.Cost.float_adds <- ds.ds_counters.Cost.float_adds + 1;
  bump_vec ds 1

let[@inline] bump_fmul rt =
  let ds = cur rt in
  ds.ds_counters.Cost.float_muls <- ds.ds_counters.Cost.float_muls + 1;
  bump_vec ds 1

let[@inline] bump_fdiv rt =
  let ds = cur rt in
  ds.ds_counters.Cost.float_divs <- ds.ds_counters.Cost.float_divs + 1;
  bump_vec ds 1

(* Label the address range of a freshly allocated object so reports can name
   it (the bump allocator keeps ranges disjoint). *)
let register_ptr_region alloc label (p : Mem.ptr) =
  Mem.register_region alloc ~label ~base:p.Mem.p_base
    ~bytes:(Mem.obj_length p.Mem.p_obj * p.Mem.p_elem_bytes)
    ~elem_bytes:p.Mem.p_elem_bytes

(* Race-detector hook: record the logical access even when the backend model
   treats it as register-resident — the C program still performs it, and the
   happens-before analysis must see every load/store of the parallel loop. *)
let[@inline] log_access rt loc ~addr ~bytes ~write =
  match rt.access_log with
  | None -> ()
  | Some buf ->
    rt.rec_nacc <- rt.rec_nacc + 1;
    buf :=
      {
        Trace.ac_loc = loc;
        ac_addr = addr;
        ac_bytes = bytes;
        ac_write = write;
        ac_locks = rt.held_locks;
      }
      :: !buf

(* Shadow address of a frame slot, when the slot holds a scalar that real
   OpenMP would share between the threads of the pragma being compiled:
   allocated (and labeled with the variable's name) on first use, stable for
   the rest of the program.  [None] = the slot stays a register (shadowing
   off, not inside a pragma, privatized, or declared inside the body). *)
let slot_shadow cenv slot ty =
  if not cenv.rt.shadow_slots then None
  else
    match cenv.shadow_ctx with
    | None -> None
    | Some sx ->
      if slot >= sx.sx_limit || Hashtbl.mem sx.sx_private slot then None
      else begin
        let key = (cenv.cur_fun, slot) in
        match Hashtbl.find_opt cenv.shadow_addrs key with
        | Some ab -> Some ab
        | None ->
          let bytes = scalar_bytes (resolve cenv ty) in
          let label =
            match List.find_opt (fun (_, (s, _)) -> s = slot) cenv.scope with
            | Some (n, _) -> n
            | None -> Printf.sprintf "local#%d" slot
          in
          let addr = Mem.shadow_slot cenv.rt.alloc ~label ~bytes in
          Hashtbl.replace cenv.shadow_addrs key (addr, bytes);
          Some (addr, bytes)
      end

(* Per-site register-promotion memos: a repeated access at the same site and
   the same address is a register hit under an optimizing backend (loop
   invariant code motion / scalar replacement), so it costs nothing and does
   not reach the cache.  [loc] is the source location of the site, carried
   into the access log.  The memo is sharded per execution stream
   ({!Cache.Memo}) so concurrent workers model private registers instead of
   racing on one cell. *)
let memo_load rt loc =
  let memo = Cache.Memo.create ~streams:(n_streams rt) in
  fun (p : Mem.ptr) ->
    let a = Mem.addr_of p in
    log_access rt loc ~addr:a ~bytes:p.Mem.p_elem_bytes ~write:false;
    let ds = cur rt in
    if Cache.Memo.probe memo ~stream:ds.ds_slot a then Mem.peek p
    else begin
      bump_load ds.ds_counters;
      Mem.load ds.ds_cache p
    end

let memo_store rt loc =
  let memo = Cache.Memo.create ~streams:(n_streams rt) in
  fun (p : Mem.ptr) v ->
    let a = Mem.addr_of p in
    log_access rt loc ~addr:a ~bytes:p.Mem.p_elem_bytes ~write:true;
    let ds = cur rt in
    if Cache.Memo.probe memo ~stream:ds.ds_slot a then Mem.poke p v
    else begin
      bump_store ds.ds_counters;
      Mem.store ds.ds_cache p v
    end

(* ------------------------------------------------------------------ *)
(* Builtin math functions *)

let builtin_math : (string * (float -> float) * int) list =
  [
    ("sin", sin, 40); ("cos", cos, 40); ("tan", tan, 60);
    ("asin", asin, 60); ("acos", acos, 60); ("atan", atan, 50);
    ("sinh", sinh, 60); ("cosh", cosh, 60); ("tanh", tanh, 60);
    ("exp", exp, 40); ("log", log, 40); ("log2", (fun x -> log x /. log 2.0), 45);
    ("log10", log10, 45); ("sqrt", sqrt, 20); ("fabs", abs_float, 2);
    ("floor", floor, 4); ("ceil", ceil, 4); ("round", Float.round, 4);
    ("sinf", sin, 30); ("cosf", cos, 30); ("sqrtf", sqrt, 14);
    ("expf", exp, 30); ("logf", log, 30); ("fabsf", abs_float, 2);
  ]

let builtin_math2 : (string * (float -> float -> float) * int) list =
  [
    ("pow", ( ** ), 60); ("powf", ( ** ), 50);
    ("fmin", Float.min, 3); ("fmax", Float.max, 3);
    ("atan2", atan2, 70); ("fmod", Float.rem, 25);
  ]

(* ------------------------------------------------------------------ *)
(* printf *)

let string_of_value = function
  | Mem.VInt i -> string_of_int i
  | Mem.VFloat f -> Printf.sprintf "%g" f
  | Mem.VPtr _ -> "<ptr>"
  | Mem.VNull -> "<null>"

let decode_c_string (p : Mem.ptr) =
  match p.Mem.p_obj with
  | Mem.OInts a ->
    let buf = Buffer.create 16 in
    let rec go i =
      if i < Array.length a && a.(i) <> 0 then begin
        Buffer.add_char buf (Char.chr (a.(i) land 0xff));
        go (i + 1)
      end
    in
    go p.Mem.p_off;
    Buffer.contents buf
  | _ -> "<str>"

let remove_char s c = String.to_seq s |> Seq.filter (( <> ) c) |> String.of_seq

(* integer floor/ceil division, PluTo's floord/ceild *)
let floord a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let ceild a b = -floord (-a) b

let run_printf out fmt args =
  let n = String.length fmt in
  let args = ref args in
  let next_arg () =
    match !args with
    | [] -> Mem.VInt 0
    | a :: rest ->
      args := rest;
      a
  in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '%' && !i + 1 < n then begin
      (* scan flags/width/precision *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (match fmt.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | ' ' | '#' | 'l' -> true
           | _ -> false)
      do
        incr j
      done;
      if !j < n then begin
        let spec = String.sub fmt !i (!j - !i + 1) in
        let conv = fmt.[!j] in
        (match conv with
        | 'd' | 'i' ->
          let s = String.map (fun c -> if c = 'i' then 'd' else c) spec in
          let s = remove_char s 'l' in
          Buffer.add_string out
            (Printf.sprintf (Scanf.format_from_string s "%d") (Mem.to_int (next_arg ())))
        | 'f' | 'g' | 'e' ->
          let s = remove_char spec 'l' in
          Buffer.add_string out
            (Printf.sprintf (Scanf.format_from_string s "%f") (Mem.to_float (next_arg ())))
        | 'c' ->
          Buffer.add_char out (Char.chr (Mem.to_int (next_arg ()) land 0xff))
        | 's' -> (
          match next_arg () with
          | Mem.VPtr p -> Buffer.add_string out (decode_c_string p)
          | v -> Buffer.add_string out (string_of_value v))
        | '%' -> Buffer.add_char out '%'
        | _ -> Buffer.add_string out spec);
        i := !j + 1
      end
      else begin
        Buffer.add_char out c;
        incr i
      end
    end
    else begin
      Buffer.add_char out c;
      incr i
    end
  done

(* ------------------------------------------------------------------ *)
(* Value coercion to a declared type (C assignment semantics) *)

let coerce ty (v : Mem.value) : Mem.value =
  match ty with
  | Ast.Int | Ast.Char -> (
    match v with
    | Mem.VInt _ -> v
    | Mem.VFloat f -> Mem.VInt (int_of_float f)
    | Mem.VNull -> Mem.VInt 0
    | Mem.VPtr _ -> v)
  | Ast.Float | Ast.Double -> (
    match v with
    | Mem.VFloat _ -> v
    | Mem.VInt i -> Mem.VFloat (float_of_int i)
    | v -> v)
  | _ -> v

(* Syntactic identity over the effect-free address grammar (names,
   integer literals, subscript chains): used to recognize in-place
   update statements, A[i][j] = A[i][j] + e. *)
let rec same_lval a b =
  match (a.Ast.edesc, b.Ast.edesc) with
  | Ast.Ident x, Ast.Ident y -> x = y
  | Ast.IntLit x, Ast.IntLit y -> x = y
  | Ast.Index (b1, i1), Ast.Index (b2, i2) -> same_lval b1 b2 && same_lval i1 i2
  | _ -> false

(* No assignment or ++/-- anywhere inside [e], so frame slots cannot
   change across its evaluation (address-of a register variable is
   rejected at compile time, so calls cannot reach locals either). *)
let no_local_writes e =
  Ast.fold_expr
    (fun acc x ->
      acc
      && match x.Ast.edesc with Ast.Assign _ | Ast.IncDec _ -> false | _ -> true)
    true e

(* ------------------------------------------------------------------ *)
(* Call-overhead model: -O2 inlines small leaf functions. *)

(* rough static operation count of an expression *)
let expr_size (e : Ast.expr) = Ast.fold_expr (fun acc _ -> acc + 1) 0 e

let stmt_size (s : Ast.stmt) =
  Ast.fold_stmt ~stmt:(fun acc _ -> acc + 1) ~expr:(fun acc _ -> acc + 1) 0 s

let body_size (f : Ast.func) =
  match f.Ast.f_body with
  | None -> max_int
  | Some ss -> List.fold_left (fun acc s -> acc + stmt_size s) 0 ss

let has_control (f : Ast.func) =
  match f.Ast.f_body with
  | None -> true
  | Some ss ->
    List.exists
      (fun s ->
        Ast.fold_stmt
          ~stmt:(fun acc s ->
            acc
            ||
            match s.Ast.sdesc with
            | Ast.SFor _ | Ast.SWhile _ | Ast.SDoWhile _ | Ast.SIf _ -> true
            | _ -> false)
          ~expr:(fun acc _ -> acc)
          false s)
      ss

(** Cycles charged per call: tiny straight-line callees are treated as
    inlined by the optimizing backend; anything with loops or branches (or a
    big body) pays the real call overhead. *)
let call_overhead_cycles (f : Ast.func) =
  if (not (has_control f)) && body_size f <= 10 then 2 else 26

let _ = expr_size

(* ------------------------------------------------------------------ *)
(* Lvalues *)

type lval =
  | LSlot of int * Ast.ctype
  | LGlobal of Mem.value ref * int * Ast.ctype  (** cell, address, type *)
  | LMem of (frame -> Mem.ptr) * Ast.ctype

let lval_type = function LSlot (_, t) | LGlobal (_, _, t) | LMem (_, t) -> t

(* ------------------------------------------------------------------ *)
(* Typed closures for the fast (uninstrumented) variant.

   The modeled compiler produces [frame -> Mem.value] closures: every
   intermediate result is boxed, which is most of the interpreter's
   constant factor.  When [rt.instr = Fast] the compiler specializes on
   the statically known C type instead and emits [frame -> int] /
   [frame -> float] kernels, converting between representations only at
   the genuinely polymorphic seams (frame slots, pointer values,
   user-function boundaries) — exactly the points where the modeled
   engine applies [Mem.to_int]/[to_float], so conversions and their
   faults are identical. *)

type fx =
  | FI of (frame -> int)
  | FF of (frame -> float)
  | FV of (frame -> Mem.value)
  | FS of int  (** symbolic frame-slot read: consumers fuse the conversion *)
  | FG of Mem.value ref  (** symbolic global-scalar read *)

(* [FS]/[FG] defer the slot read to the consumer, which applies exactly
   the conversion the boxed path would — one closure instead of a read
   wrapper plus a conversion wrapper on every scalar variable use. *)
let fx_value = function
  | FI f -> fun fr -> Mem.VInt (f fr)
  | FF f -> fun fr -> Mem.VFloat (f fr)
  | FV f -> f
  | FS s -> fun fr -> fr.(s)
  | FG g -> fun _ -> !g

(* each conversion mirrors Mem.to_int/to_float/to_ptr/truthy arm for arm *)
let fx_int = function
  | FI f -> f
  | FF f -> fun fr -> int_of_float (f fr)
  | FV f -> fun fr -> Mem.to_int (f fr)
  | FS s -> fun fr -> Mem.to_int fr.(s)
  | FG g -> fun _ -> Mem.to_int !g

let fx_float = function
  | FF f -> f
  | FI f -> fun fr -> float_of_int (f fr)
  | FV f -> fun fr -> Mem.to_float (f fr)
  | FS s -> fun fr -> Mem.to_float fr.(s)
  | FG g -> fun _ -> Mem.to_float !g

let fx_bool = function
  | FI f -> fun fr -> f fr <> 0
  | FF f -> fun fr -> f fr <> 0.0
  | FV f -> fun fr -> Mem.truthy (f fr)
  | FS s -> fun fr -> Mem.truthy fr.(s)
  | FG g -> fun _ -> Mem.truthy !g

let fx_unit = function
  | FI f -> fun fr -> ignore (f fr)
  | FF f -> fun fr -> ignore (f fr)
  | FV f -> fun fr -> ignore (f fr)
  | FS s -> fun fr -> ignore fr.(s)
  | FG _ -> fun _ -> ()

(* a typed scalar used where a pointer is required still evaluates its
   operand first (side-effect parity with [Mem.to_ptr] on the boxed path) *)
let fx_ptr = function
  | FV f -> fun fr -> Mem.to_ptr (f fr)
  | FS s -> fun fr -> Mem.to_ptr fr.(s)
  | FG g -> fun _ -> Mem.to_ptr !g
  | FI f ->
    fun fr ->
      ignore (f fr);
      Mem.fault "scalar used as pointer"
  | FF f ->
    fun fr ->
      ignore (f fr);
      Mem.fault "scalar used as pointer"

(* normalize the symbolic reads away where a consumer needs the raw boxed
   value (assignment coercion, casts): the raw slot value can be any kind,
   so only the [FV] arms' semantics are correct there *)
let fx_norm = function
  | FS s -> FV (fun fr -> fr.(s))
  | FG g -> FV (fun _ -> !g)
  | x -> x

(** Fast-path lvalues.  Memory targets are decomposed into a root pointer
    closure plus a flat element-offset closure, so nested subscripts
    compose into one integer offset computation and the hot load/store
    allocates no intermediate pointer records. *)
type flv =
  | FLSlot of int * Ast.ctype
  | FLGlobal of Mem.value ref * Ast.ctype
  | FLMem of (frame -> Mem.ptr) * (frame -> int) * Ast.ctype

let flv_type = function FLSlot (_, t) | FLGlobal (_, t) | FLMem (_, _, t) -> t

(* [combine] of the modeled [compile_assign] minus counters: compound
   assignment on boxed values, used at the polymorphic seams of the fast
   assignment compiler. *)
let fast_combine ty op old rv =
  match (ty, old, op) with
  | Ast.Ptr _, Mem.VPtr p, Ast.OpAddAssign ->
    Mem.VPtr (Mem.ptr_add p (Mem.to_int rv))
  | Ast.Ptr _, Mem.VPtr p, Ast.OpSubAssign ->
    Mem.VPtr (Mem.ptr_add p (-Mem.to_int rv))
  | _ -> (
    match op with
    | Ast.OpAssign -> coerce ty rv
    | Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign ->
      if is_floaty ty then begin
        let a = Mem.to_float old and b = Mem.to_float rv in
        Mem.VFloat
          (match op with
          | Ast.OpAddAssign -> a +. b
          | Ast.OpSubAssign -> a -. b
          | Ast.OpMulAssign -> a *. b
          | _ -> a /. b)
      end
      else begin
        let a = Mem.to_int old and b = Mem.to_int rv in
        Mem.VInt
          (match op with
          | Ast.OpAddAssign -> a + b
          | Ast.OpSubAssign -> a - b
          | Ast.OpMulAssign -> a * b
          | _ -> if b = 0 then Mem.fault "division by zero" else a / b)
      end
    | Ast.OpModAssign ->
      let a = Mem.to_int old and b = Mem.to_int rv in
      if b = 0 then Mem.fault "modulo by zero" else Mem.VInt (a mod b))

(* ------------------------------------------------------------------ *)
(* Symbolic (root, offset) descriptors for the fast address path.

   [fast_addr_opt] composes subscript chains symbolically: constant and
   slot-indexed affine shapes (up to two slots — the [A\[i\]\[k\]] row-major
   pattern) stay as data until a consumer materializes them, so the hot
   load [A[i][k]] compiles to ONE closure doing
   [get_f view (N * to_int fr.(i) + to_int fr.(k))] instead of a chain of
   index/compose/root calls.  Slot reads use [Mem.to_int] exactly like
   the boxed path, and the evaluation order inside a fused closure is the
   composed order of the modeled engine: each new subscript's index
   before the accumulated offset, offset before root conversion. *)

type froot = RConst of Mem.ptr | RClo of (frame -> Mem.ptr)

type foff =
  | KConst of int
  | K1 of int * int * int  (** [K1 (m, s, c)] = m * to_int fr.(s) + c *)
  | K2 of int * int * int * int * int
      (** [K2 (m1, s1, m2, s2, c)]: reads [s2] {e before} [s1] — the
          inner subscript composed after the outer one *)
  | KClo of (frame -> int)

let froot_clo = function RConst v -> fun _ -> v | RClo f -> f

let foff_clo = function
  | KConst c -> fun _ -> c
  | K1 (m, s, c) -> fun fr -> (m * Mem.to_int fr.(s)) + c
  | K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      (m1 * Mem.to_int fr.(s1)) + b
  | KClo f -> f

(* [foff_compose acc cls st]: flat-compose a new subscript (classified as
   a constant, an int slot, or an opaque closure) scaled by [st] onto the
   accumulated offset.  The new index always evaluates first. *)
let foff_compose acc cls st =
  match (acc, cls) with
  | KConst a, `Const n -> KConst (a + (st * n))
  | KConst a, `Slot s -> K1 (st, s, a)
  | KConst 0, `Clo f when st = 1 -> KClo f
  | KConst a, `Clo f -> KClo (fun fr -> a + (st * f fr))
  | K1 (m, s, c), `Const n -> K1 (m, s, c + (st * n))
  | K1 (m1, s1, c), `Slot s2 -> K2 (m1, s1, st, s2, c)
  | K1 (m1, s1, c), `Clo f ->
    KClo (fun fr -> let k = f fr in (m1 * Mem.to_int fr.(s1)) + c + (st * k))
  | K2 (m1, s1, m2, s2, c), `Const n -> K2 (m1, s1, m2, s2, c + (st * n))
  | (K2 _ as acc), `Slot s ->
    let o = foff_clo acc in
    KClo (fun fr -> let k = Mem.to_int fr.(s) in o fr + (st * k))
  | (K2 _ as acc), `Clo f ->
    let o = foff_clo acc in
    KClo (fun fr -> let k = f fr in o fr + (st * k))
  | KClo o, `Const n -> KClo (fun fr -> o fr + (st * n))
  | KClo o, `Slot s ->
    KClo (fun fr -> let k = Mem.to_int fr.(s) in o fr + (st * k))
  | KClo o, `Clo f -> KClo (fun fr -> let k = f fr in o fr + (st * k))

(* fused element loads: one closure per access for the affine shapes *)
let fused_get_f br bo : frame -> float =
  match (br, bo) with
  | RConst v, KConst c -> fun _ -> Mem.get_f v c
  | RConst v, K1 (m, s, c) ->
    fun fr -> Mem.get_f v ((m * Mem.to_int fr.(s)) + c)
  | RConst v, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      Mem.get_f v ((m1 * Mem.to_int fr.(s1)) + b)
  | RConst v, KClo o -> fun fr -> Mem.get_f v (o fr)
  | RClo r, KConst c -> fun fr -> Mem.get_f (r fr) c
  | RClo r, K1 (m, s, c) ->
    fun fr ->
      let j = (m * Mem.to_int fr.(s)) + c in
      Mem.get_f (r fr) j
  | RClo r, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      let j = (m1 * Mem.to_int fr.(s1)) + b in
      Mem.get_f (r fr) j
  | RClo r, KClo o ->
    fun fr ->
      let j = o fr in
      Mem.get_f (r fr) j

let fused_get_i br bo : frame -> int =
  match (br, bo) with
  | RConst v, KConst c -> fun _ -> Mem.get_i v c
  | RConst v, K1 (m, s, c) ->
    fun fr -> Mem.get_i v ((m * Mem.to_int fr.(s)) + c)
  | RConst v, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      Mem.get_i v ((m1 * Mem.to_int fr.(s1)) + b)
  | RConst v, KClo o -> fun fr -> Mem.get_i v (o fr)
  | RClo r, KConst c -> fun fr -> Mem.get_i (r fr) c
  | RClo r, K1 (m, s, c) ->
    fun fr ->
      let j = (m * Mem.to_int fr.(s)) + c in
      Mem.get_i (r fr) j
  | RClo r, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      let j = (m1 * Mem.to_int fr.(s1)) + b in
      Mem.get_i (r fr) j
  | RClo r, KClo o ->
    fun fr ->
      let j = o fr in
      Mem.get_i (r fr) j

(* fused row-pointer fetch, for [A[i][j]] through a pointer-array row *)
let fused_get_p br bo : frame -> Mem.ptr =
  match (br, bo) with
  | RConst v, KConst c -> fun _ -> Mem.get_p v c
  | RConst v, K1 (m, s, c) ->
    fun fr -> Mem.get_p v ((m * Mem.to_int fr.(s)) + c)
  | RConst v, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      Mem.get_p v ((m1 * Mem.to_int fr.(s1)) + b)
  | RConst v, KClo o -> fun fr -> Mem.get_p v (o fr)
  | RClo r, KConst c -> fun fr -> Mem.get_p (r fr) c
  | RClo r, K1 (m, s, c) ->
    fun fr ->
      let j = (m * Mem.to_int fr.(s)) + c in
      Mem.get_p (r fr) j
  | RClo r, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      let j = (m1 * Mem.to_int fr.(s1)) + b in
      Mem.get_p (r fr) j
  | RClo r, KClo o ->
    fun fr ->
      let j = o fr in
      Mem.get_p (r fr) j

(* fused element stores for statement-level assignments: offset, then
   root, then the rhs — the modeled assignment order *)
(* A float operand inside a fused arithmetic node: either a float element
   load kept symbolic (root and offset closures both return non-allocating
   values, so the load inlines into the node without a boxed-float
   crossing), or an opaque [frame -> float] closure. *)
type fleaf = FlGet of (frame -> Mem.ptr) * (frame -> int) | FlClo of (frame -> float)

let fused_set_f br bo (g : frame -> float) : frame -> unit =
  match (br, bo) with
  | RConst v, KConst c -> fun fr -> Mem.set_f v c (g fr)
  | RConst v, K1 (m, s, c) ->
    fun fr ->
      let j = (m * Mem.to_int fr.(s)) + c in
      let x = g fr in
      Mem.set_f v j x
  | RConst v, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      let j = (m1 * Mem.to_int fr.(s1)) + b in
      let x = g fr in
      Mem.set_f v j x
  | RConst v, KClo o ->
    fun fr ->
      let j = o fr in
      let x = g fr in
      Mem.set_f v j x
  | RClo r, KConst c ->
    fun fr ->
      let p = r fr in
      let x = g fr in
      Mem.set_f p c x
  | RClo r, K1 (m, s, c) ->
    fun fr ->
      let j = (m * Mem.to_int fr.(s)) + c in
      let p = r fr in
      let x = g fr in
      Mem.set_f p j x
  | RClo r, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      let j = (m1 * Mem.to_int fr.(s1)) + b in
      let p = r fr in
      let x = g fr in
      Mem.set_f p j x
  | RClo r, KClo o ->
    fun fr ->
      let j = o fr in
      let p = r fr in
      let x = g fr in
      Mem.set_f p j x

let fused_set_i br bo (g : frame -> int) : frame -> unit =
  match (br, bo) with
  | RConst v, KConst c -> fun fr -> Mem.set_i v c (g fr)
  | RConst v, K1 (m, s, c) ->
    fun fr ->
      let j = (m * Mem.to_int fr.(s)) + c in
      let x = g fr in
      Mem.set_i v j x
  | RConst v, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      let j = (m1 * Mem.to_int fr.(s1)) + b in
      let x = g fr in
      Mem.set_i v j x
  | RConst v, KClo o ->
    fun fr ->
      let j = o fr in
      let x = g fr in
      Mem.set_i v j x
  | RClo r, KConst c ->
    fun fr ->
      let p = r fr in
      let x = g fr in
      Mem.set_i p c x
  | RClo r, K1 (m, s, c) ->
    fun fr ->
      let j = (m * Mem.to_int fr.(s)) + c in
      let p = r fr in
      let x = g fr in
      Mem.set_i p j x
  | RClo r, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let b = (m2 * Mem.to_int fr.(s2)) + c in
      let j = (m1 * Mem.to_int fr.(s1)) + b in
      let p = r fr in
      let x = g fr in
      Mem.set_i p j x
  | RClo r, KClo o ->
    fun fr ->
      let j = o fr in
      let p = r fr in
      let x = g fr in
      Mem.set_i p j x

(* ------------------------------------------------------------------ *)
(* Leaf-kernel specialization.

   A {e leaf} callee — a single [return] preceded only by initialized
   scalar declarations, whose body is pure arithmetic over its parameters
   (loads through pointer parameters allowed, no user calls, no
   assignments) — compiles to an unboxed closure over a typed parameter
   environment.  The caller fills the environment left-to-right (the
   modeled argv order) and applies the body directly: no argv array, no
   callee frame, no [Return_v] unwind, and no value boxing anywhere in
   the call.  This is where the paper's hot pure functions live (the dot
   product's [mult], stencils, per-element terms), so it carries most of
   the fast path's order-of-magnitude win.

   Parity is kept by construction: each node mirrors the corresponding
   [fast_expr] arm (which in turn mirrors the modeled engine).  A
   kind-matched argument (float expression into a float parameter) fills
   an unboxed typed slot; every other argument — including pointers —
   fills a {e raw} slot holding the boxed value exactly as the modeled
   argv copy would, and conversions ([to_int]/[to_float]/[to_ptr])
   happen at each {e use} site inside the body, which is precisely where
   the modeled engine applies them.  Fills therefore never fault, so no
   fault can reorder across the call boundary. *)

exception Not_leaf

(* In-place float element update A[...] = A[...] ⊗ e over a shared address
   decomposition: one closure computes the offset once (inlined per
   K-form), loads, applies, stores.  Callers guard the decomposition to a
   constant root and a slot-built offset, so only those forms are
   specialized; [op] is fixed at plan time and the in-closure dispatch on
   it is branch-predicted away. *)
let fused_rmw_f br bo (op : Ast.binop) (g : frame -> float) : frame -> unit =
  let apply a b =
    match op with
    | Ast.Add -> a +. b
    | Ast.Sub -> a -. b
    | Ast.Mul -> a *. b
    | _ -> a /. b
  in
  match (br, bo) with
  | RConst v, KConst c ->
    fun fr ->
      let b = g fr in
      let a = Mem.get_f v c in
      Mem.set_f v c (apply a b)
  | RConst v, K1 (m, s, c) ->
    fun fr ->
      let j = (m * Mem.to_int fr.(s)) + c in
      let b = g fr in
      let a = Mem.get_f v j in
      Mem.set_f v j (apply a b)
  | RConst v, K2 (m1, s1, m2, s2, c) ->
    fun fr ->
      let j2 = (m2 * Mem.to_int fr.(s2)) + c in
      let j = (m1 * Mem.to_int fr.(s1)) + j2 in
      let b = g fr in
      let a = Mem.get_f v j in
      Mem.set_f v j (apply a b)
  | _ ->
    let root = froot_clo br and off = foff_clo bo in
    fun fr ->
      let j = off fr in
      let p = root fr in
      let b = g fr in
      let a = Mem.get_f p j in
      Mem.set_f p j (apply a b)

type lenv = { le_f : float array; le_i : int array; le_v : Mem.value array }

type lx =
  | LI of (lenv -> int)
  | LF of (lenv -> float)
  | LV of (lenv -> Mem.value)  (** raw slot reads: convert at the use site *)

(* slot * declared type; raw slots keep their static type for strides *)
type lslot = LSF of int | LSI of int | LSV of int

let lx_int = function
  | LI f -> f
  | LF f -> fun env -> int_of_float (f env)
  | LV f -> fun env -> Mem.to_int (f env)

let lx_float = function
  | LF f -> f
  | LI f -> fun env -> float_of_int (f env)
  | LV f -> fun env -> Mem.to_float (f env)

let lx_bool = function
  | LI f -> fun env -> f env <> 0
  | LF f -> fun env -> f env <> 0.0
  | LV f -> fun env -> Mem.truthy (f env)

let lx_value = function
  | LI f -> fun env -> Mem.VInt (f env)
  | LF f -> fun env -> Mem.VFloat (f env)
  | LV f -> f

let lempty_f : float array = [||]
let lempty_i : int array = [||]
let lempty_v : Mem.value array = [||]

let rec leaf_expr cenv (scope : (string * (lslot * Ast.ctype)) list)
    (e : Ast.expr) : lx * Ast.ctype =
  match e.Ast.edesc with
  | Ast.IntLit n -> (LI (fun _ -> n), Ast.Int)
  | Ast.FloatLit (f, single) ->
    (LF (fun _ -> f), if single then Ast.Float else Ast.Double)
  | Ast.CharLit ch ->
    let c = Char.code ch in
    (LI (fun _ -> c), Ast.Char)
  | Ast.Ident name -> (
    match List.assoc_opt name scope with
    | Some (LSF k, ty) -> (LF (fun env -> Array.unsafe_get env.le_f k), ty)
    | Some (LSI k, ty) -> (LI (fun env -> Array.unsafe_get env.le_i k), ty)
    | Some (LSV k, ty) -> (LV (fun env -> Array.unsafe_get env.le_v k), ty)
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (GScalar { cell; _ }, ty) -> (LV (fun _ -> !cell), ty)
      | _ -> raise Not_leaf))
  | Ast.Binop (op, a, b) -> leaf_binop cenv scope e op a b
  | Ast.Unop (op, a) -> (
    let fa, ta = leaf_expr cenv scope a in
    let ta = resolve cenv ta in
    match op with
    | Ast.Neg ->
      if is_floaty ta then begin
        let f = lx_float fa in
        (LF (fun env -> -.f env), ta)
      end
      else begin
        let f = lx_int fa in
        (LI (fun env -> -f env), Ast.Int)
      end
    | Ast.LNot ->
      let f = lx_bool fa in
      (LI (fun env -> if f env then 0 else 1), Ast.Int)
    | Ast.BNot ->
      let f = lx_int fa in
      (LI (fun env -> lnot (f env)), Ast.Int))
  | Ast.Cond (cond, t, f) -> (
    let fc = lx_bool (fst (leaf_expr cenv scope cond)) in
    let ft, tt = leaf_expr cenv scope t in
    let ff, _tf = leaf_expr cenv scope f in
    match (ft, ff) with
    | LI a, LI b -> (LI (fun env -> if fc env then a env else b env), tt)
    | LF a, LF b -> (LF (fun env -> if fc env then a env else b env), tt)
    | _ ->
      (* a mixed-kind join is the modeled engine's uncoerced FV seam *)
      let a = lx_value ft and b = lx_value ff in
      (LV (fun env -> if fc env then a env else b env), tt))
  | Ast.Cast (ty, inner) -> (
    let ty = resolve cenv ty in
    let fi, _ti = leaf_expr cenv scope inner in
    match ty with
    | Ast.Int | Ast.Char -> (
      match fi with
      | LI f -> (LI f, ty)
      | LF f -> (LI (fun env -> int_of_float (f env)), ty)
      | LV f ->
        ( LV
            (fun env ->
              match f env with
              | Mem.VInt i -> Mem.VInt i
              | Mem.VFloat x -> Mem.VInt (int_of_float x)
              | v -> v),
          ty ))
    | Ast.Float | Ast.Double -> (
      match fi with
      | LF f -> (LF f, ty)
      | LI f -> (LF (fun env -> float_of_int (f env)), ty)
      | LV f ->
        ( LV
            (fun env ->
              match f env with
              | Mem.VFloat x -> Mem.VFloat x
              | Mem.VInt i -> Mem.VFloat (float_of_int i)
              | v -> v),
          ty ))
    | Ast.Ptr _ -> raise Not_leaf
    | _ -> (fi, ty))
  | Ast.Index ({ Ast.edesc = Ast.Ident name; _ }, idx) -> (
    (* index first, then pointer conversion, then the bounds-checked
       load: the exact modeled order, so every fault lands where the
       modeled engine raises it *)
    let subscript base_ty (getp : lenv -> Mem.ptr) =
      let elt, stride, is_view = subscript_info cenv base_ty in
      let fi = lx_int (fst (leaf_expr cenv scope idx)) in
      let off =
        if is_view && stride <> 1 then fun env -> stride * fi env else fi
      in
      match elt with
      | Ast.Float | Ast.Double ->
        ( LF
            (fun env ->
              let j = off env in
              Mem.get_f (getp env) j),
          elt )
      | Ast.Int | Ast.Char ->
        ( LI
            (fun env ->
              let j = off env in
              Mem.get_i (getp env) j),
          elt )
      | _ -> raise Not_leaf
    in
    match List.assoc_opt name scope with
    | Some (LSV k, pty) -> (
      match resolve cenv pty with
      | (Ast.Ptr _ | Ast.Array _) as bt ->
        subscript bt (fun env -> Mem.to_ptr (Array.unsafe_get env.le_v k))
      | _ -> raise Not_leaf)
    | Some ((LSF _ | LSI _), _) -> raise Not_leaf
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (GArray { view }, ty) -> subscript (resolve cenv ty) (fun _ -> view)
      | _ -> raise Not_leaf))
  | Ast.Call (fname, args) -> (
    match fname with
    | "__max" | "__min" -> (
      match List.map (fun a -> leaf_expr cenv scope a) args with
      | [ (fa, _); (fb, _) ] ->
        let x = lx_int fa and y = lx_int fb in
        let pick_max = fname = "__max" in
        ( LI
            (fun env ->
              let a = x env in
              let b = y env in
              if pick_max then max a b else min a b),
          Ast.Int )
      | _ -> raise Not_leaf)
    | "__ceild" | "__floord" -> (
      match List.map (fun a -> leaf_expr cenv scope a) args with
      | [ (fa, _); (fb, _) ] ->
        let x = lx_int fa and y = lx_int fb in
        let ceil_mode = fname = "__ceild" in
        ( LI
            (fun env ->
              let a = x env in
              let b = y env in
              if b = 0 then Mem.fault "division by zero in %s" fname
              else if ceil_mode then ceild a b
              else floord a b),
          Ast.Int )
      | _ -> raise Not_leaf)
    | "abs" -> (
      match List.map (fun a -> lx_int (fst (leaf_expr cenv scope a))) args with
      | [ fa ] -> (LI (fun env -> abs (fa env)), Ast.Int)
      | _ -> raise Not_leaf)
    | _ -> (
      match List.find_opt (fun (n, _, _) -> n = fname) builtin_math with
      | Some (_, f, _weight) -> (
        match List.map (fun a -> lx_float (fst (leaf_expr cenv scope a))) args with
        | [ fa ] ->
          let single =
            String.length fname > 0 && fname.[String.length fname - 1] = 'f'
          in
          (LF (fun env -> f (fa env)), if single then Ast.Float else Ast.Double)
        | _ -> raise Not_leaf)
      | None -> (
        match List.find_opt (fun (n, _, _) -> n = fname) builtin_math2 with
        | Some (_, f, _weight) -> (
          match
            List.map (fun a -> lx_float (fst (leaf_expr cenv scope a))) args
          with
          | [ fa; fb ] ->
            ( LF
                (fun env ->
                  let b = fb env in
                  let a = fa env in
                  f a b),
              Ast.Double )
          | _ -> raise Not_leaf)
        | None -> raise Not_leaf)))
  | _ -> raise Not_leaf

and leaf_binop cenv scope e op a b : lx * Ast.ctype =
  let fa, ta = leaf_expr cenv scope a in
  let fb, tb = leaf_expr cenv scope b in
  let ta = resolve cenv ta and tb = resolve cenv tb in
  let arith = promote ta tb in
  (match (ta, tb) with
  | (Ast.Ptr _ | Ast.Array _), _ | _, (Ast.Ptr _ | Ast.Array _) -> raise Not_leaf
  | _ -> ());
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    if is_floaty arith then begin
      let x = lx_float fa and y = lx_float fb in
      let run =
        match op with
        | Ast.Add ->
          fun env ->
            let b = y env in
            x env +. b
        | Ast.Sub ->
          fun env ->
            let b = y env in
            x env -. b
        | Ast.Mul ->
          fun env ->
            let b = y env in
            x env *. b
        | Ast.Div ->
          fun env ->
            let b = y env in
            x env /. b
        | _ -> assert false
      in
      (LF run, arith)
    end
    else begin
      let x = lx_int fa and y = lx_int fb in
      let run =
        match op with
        | Ast.Add ->
          fun env ->
            let b = y env in
            x env + b
        | Ast.Sub ->
          fun env ->
            let b = y env in
            x env - b
        | Ast.Mul ->
          fun env ->
            let b = y env in
            x env * b
        | Ast.Div ->
          let loc = Loc.to_string e.Ast.eloc in
          fun env ->
            let d = y env in
            if d = 0 then Mem.fault "integer division by zero at %s" loc
            else x env / d
        | _ -> assert false
      in
      (LI run, Ast.Int)
    end
  | Ast.Mod ->
    let x = lx_int fa and y = lx_int fb in
    let loc = Loc.to_string e.Ast.eloc in
    ( LI
        (fun env ->
          let d = y env in
          if d = 0 then Mem.fault "integer modulo by zero at %s" loc
          else x env mod d),
      Ast.Int )
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    let run =
      if is_floaty arith then begin
        let x = lx_float fa and y = lx_float fb in
        match op with
        | Ast.Lt ->
          fun env ->
            let b = y env in
            if x env < b then 1 else 0
        | Ast.Le ->
          fun env ->
            let b = y env in
            if x env <= b then 1 else 0
        | Ast.Gt ->
          fun env ->
            let b = y env in
            if x env > b then 1 else 0
        | Ast.Ge ->
          fun env ->
            let b = y env in
            if x env >= b then 1 else 0
        | Ast.Eq ->
          fun env ->
            let b = y env in
            if x env = b then 1 else 0
        | Ast.Ne ->
          fun env ->
            let b = y env in
            if x env <> b then 1 else 0
        | _ -> assert false
      end
      else begin
        let x = lx_int fa and y = lx_int fb in
        match op with
        | Ast.Lt ->
          fun env ->
            let b = y env in
            if x env < b then 1 else 0
        | Ast.Le ->
          fun env ->
            let b = y env in
            if x env <= b then 1 else 0
        | Ast.Gt ->
          fun env ->
            let b = y env in
            if x env > b then 1 else 0
        | Ast.Ge ->
          fun env ->
            let b = y env in
            if x env >= b then 1 else 0
        | Ast.Eq ->
          fun env ->
            let b = y env in
            if x env = b then 1 else 0
        | Ast.Ne ->
          fun env ->
            let b = y env in
            if x env <> b then 1 else 0
        | _ -> assert false
      end
    in
    (LI run, Ast.Int)
  | Ast.LAnd ->
    let x = lx_bool fa and y = lx_bool fb in
    (LI (fun env -> if x env then (if y env then 1 else 0) else 0), Ast.Int)
  | Ast.LOr ->
    let x = lx_bool fa and y = lx_bool fb in
    (LI (fun env -> if x env then 1 else if y env then 1 else 0), Ast.Int)
  | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
    let x = lx_int fa and y = lx_int fb in
    let run =
      match op with
      | Ast.BAnd ->
        fun env ->
          let b = y env in
          x env land b
      | Ast.BOr ->
        fun env ->
          let b = y env in
          x env lor b
      | Ast.BXor ->
        fun env ->
          let b = y env in
          x env lxor b
      | Ast.Shl ->
        fun env ->
          let b = y env in
          x env lsl b
      | Ast.Shr ->
        fun env ->
          let b = y env in
          x env asr b
      | _ -> assert false
    in
    (LI run, Ast.Int)

(* Try to compile a call as a leaf kernel.  [cargs] are the already
   fast-compiled arguments (shared with the generic path on rejection, so
   nothing compiles twice).  Kinds must line up exactly: the modeled
   engine stores raw argument values in the callee frame, so a
   float-valued argument flowing into an int parameter keeps its
   fractional part for float-context reads — only kind-matched bindings
   preserve that. *)
let fast_leaf_call cenv (entry : func_entry) (cargs : (fx * Ast.ctype) list) :
    fx option =
  match entry.fe_def.Ast.f_body with
  | None -> None
  | Some body -> (
    try
      let rec split acc = function
        | [ { Ast.sdesc = Ast.SReturn (Some ret); _ } ] -> (List.rev acc, ret)
        | { Ast.sdesc = Ast.SDecl d; _ } :: rest -> split (d :: acc) rest
        | _ -> raise Not_leaf
      in
      let decls, ret = split [] body in
      let params = entry.fe_def.Ast.f_params in
      if List.length cargs <> List.length params then raise Not_leaf;
      let nf = ref 0 and ni = ref 0 and nv = ref 0 in
      let scope = ref [] in
      let fills = ref [] in
      List.iter2
        (fun (p : Ast.param) ((afx : fx), _aty) ->
          let pty = resolve cenv p.Ast.p_type in
          match (pty, afx) with
          | (Ast.Float | Ast.Double), FF g ->
            let k = !nf in
            incr nf;
            scope := (p.Ast.p_name, (LSF k, pty)) :: !scope;
            fills := (fun fr env -> Array.unsafe_set env.le_f k (g fr)) :: !fills
          | (Ast.Int | Ast.Char), FI g ->
            let k = !ni in
            incr ni;
            scope := (p.Ast.p_name, (LSI k, pty)) :: !scope;
            fills := (fun fr env -> Array.unsafe_set env.le_i k (g fr)) :: !fills
          | _ ->
            (* any other combination fills a raw slot with exactly the
               value the modeled argv copy would hold; never faults *)
            let k = !nv in
            incr nv;
            scope := (p.Ast.p_name, (LSV k, pty)) :: !scope;
            let fill =
              match afx with
              | FS s -> fun fr env -> Array.unsafe_set env.le_v k fr.(s)
              | FG g -> fun _ env -> Array.unsafe_set env.le_v k !g
              | FV g -> fun fr env -> Array.unsafe_set env.le_v k (g fr)
              | FI g ->
                fun fr env -> Array.unsafe_set env.le_v k (Mem.VInt (g fr))
              | FF g ->
                fun fr env -> Array.unsafe_set env.le_v k (Mem.VFloat (g fr))
            in
            fills := fill :: !fills)
        params cargs;
      let prologue = ref [] in
      List.iter
        (fun (d : Ast.decl) ->
          let ty = resolve cenv d.Ast.d_type in
          match (ty, d.Ast.d_init) with
          | (Ast.Float | Ast.Double), Some ie -> (
            match fst (leaf_expr cenv !scope ie) with
            | LF g ->
              let k = !nf in
              incr nf;
              scope := (d.Ast.d_name, (LSF k, ty)) :: !scope;
              prologue := (fun env -> Array.unsafe_set env.le_f k (g env)) :: !prologue
            | LI _ | LV _ -> raise Not_leaf)
          | (Ast.Int | Ast.Char), Some ie -> (
            match fst (leaf_expr cenv !scope ie) with
            | LI g ->
              let k = !ni in
              incr ni;
              scope := (d.Ast.d_name, (LSI k, ty)) :: !scope;
              prologue := (fun env -> Array.unsafe_set env.le_i k (g env)) :: !prologue
            | LF _ | LV _ -> raise Not_leaf)
          | _ -> raise Not_leaf)
        decls;
      let lbody = fst (leaf_expr cenv !scope ret) in
      let fills = Array.of_list (List.rev !fills) in
      let prologue = Array.of_list (List.rev !prologue) in
      let nf = !nf and ni = !ni and nv = !nv in
      let build fr =
        let env =
          {
            le_f = (if nf = 0 then lempty_f else Array.make nf 0.0);
            le_i = (if ni = 0 then lempty_i else Array.make ni 0);
            le_v = (if nv = 0 then lempty_v else Array.make nv Mem.VNull);
          }
        in
        for i = 0 to Array.length fills - 1 do
          (Array.unsafe_get fills i) fr env
        done;
        for i = 0 to Array.length prologue - 1 do
          (Array.unsafe_get prologue i) env
        done;
        env
      in
      Some
        (match lbody with
        | LF g -> FF (fun fr -> g (build fr))
        | LI g -> FI (fun fr -> g (build fr))
        | LV g -> FV (fun fr -> g (build fr)))
    with Not_leaf -> None)

(* Typed fast assignment into a frame slot.  Slots store boxed values
   (they are the polymorphic seam), but the computation of the stored
   value and the returned expression value stay unboxed when the static
   type allows. *)
let fast_assign_slot ty op slot (frhs : fx) : fx =
  let frhs = fx_norm frhs in
  match (op, ty) with
  | Ast.OpAssign, (Ast.Int | Ast.Char) -> (
    match frhs with
    | FV f ->
      FV
        (fun fr ->
          let v = coerce ty (f fr) in
          fr.(slot) <- v;
          v)
    | _ ->
      let f = fx_int frhs in
      FI
        (fun fr ->
          let v = f fr in
          fr.(slot) <- Mem.VInt v;
          v))
  | Ast.OpAssign, (Ast.Float | Ast.Double) -> (
    match frhs with
    | FV f ->
      FV
        (fun fr ->
          let v = coerce ty (f fr) in
          fr.(slot) <- v;
          v)
    | _ ->
      let f = fx_float frhs in
      FF
        (fun fr ->
          let v = f fr in
          fr.(slot) <- Mem.VFloat v;
          v))
  | Ast.OpAssign, _ ->
    let f = fx_value frhs in
    FV
      (fun fr ->
        let v = coerce ty (f fr) in
        fr.(slot) <- v;
        v)
  | ( (Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign),
      (Ast.Float | Ast.Double) ) ->
    let f = fx_float frhs in
    let opf : float -> float -> float =
      match op with
      | Ast.OpAddAssign -> ( +. )
      | Ast.OpSubAssign -> ( -. )
      | Ast.OpMulAssign -> ( *. )
      | _ -> ( /. )
    in
    FF
      (fun fr ->
        let b = f fr in
        let a = Mem.to_float fr.(slot) in
        let v = opf a b in
        fr.(slot) <- Mem.VFloat v;
        v)
  | ( (Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign
      | Ast.OpModAssign),
      (Ast.Int | Ast.Char) ) ->
    let f = fx_int frhs in
    FI
      (fun fr ->
        let b = f fr in
        let a = Mem.to_int fr.(slot) in
        let v =
          match op with
          | Ast.OpAddAssign -> a + b
          | Ast.OpSubAssign -> a - b
          | Ast.OpMulAssign -> a * b
          | Ast.OpDivAssign ->
            if b = 0 then Mem.fault "division by zero" else a / b
          | _ -> if b = 0 then Mem.fault "modulo by zero" else a mod b
        in
        fr.(slot) <- Mem.VInt v;
        v)
  | _ ->
    let f = fx_value frhs in
    FV
      (fun fr ->
        let rv = f fr in
        let v = fast_combine ty op fr.(slot) rv in
        fr.(slot) <- v;
        v)

(* same shapes for a global scalar cell *)
let fast_assign_global ty op (cell : Mem.value ref) (frhs : fx) : fx =
  let frhs = fx_norm frhs in
  match (op, ty) with
  | Ast.OpAssign, (Ast.Int | Ast.Char) -> (
    match frhs with
    | FV f ->
      FV
        (fun fr ->
          let v = coerce ty (f fr) in
          cell := v;
          v)
    | _ ->
      let f = fx_int frhs in
      FI
        (fun fr ->
          let v = f fr in
          cell := Mem.VInt v;
          v))
  | Ast.OpAssign, (Ast.Float | Ast.Double) -> (
    match frhs with
    | FV f ->
      FV
        (fun fr ->
          let v = coerce ty (f fr) in
          cell := v;
          v)
    | _ ->
      let f = fx_float frhs in
      FF
        (fun fr ->
          let v = f fr in
          cell := Mem.VFloat v;
          v))
  | Ast.OpAssign, _ ->
    let f = fx_value frhs in
    FV
      (fun fr ->
        let v = coerce ty (f fr) in
        cell := v;
        v)
  | ( (Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign),
      (Ast.Float | Ast.Double) ) ->
    let f = fx_float frhs in
    let opf : float -> float -> float =
      match op with
      | Ast.OpAddAssign -> ( +. )
      | Ast.OpSubAssign -> ( -. )
      | Ast.OpMulAssign -> ( *. )
      | _ -> ( /. )
    in
    FF
      (fun fr ->
        let b = f fr in
        let a = Mem.to_float !cell in
        let v = opf a b in
        cell := Mem.VFloat v;
        v)
  | ( (Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign
      | Ast.OpModAssign),
      (Ast.Int | Ast.Char) ) ->
    let f = fx_int frhs in
    FI
      (fun fr ->
        let b = f fr in
        let a = Mem.to_int !cell in
        let v =
          match op with
          | Ast.OpAddAssign -> a + b
          | Ast.OpSubAssign -> a - b
          | Ast.OpMulAssign -> a * b
          | Ast.OpDivAssign ->
            if b = 0 then Mem.fault "division by zero" else a / b
          | _ -> if b = 0 then Mem.fault "modulo by zero" else a mod b
        in
        cell := Mem.VInt v;
        v)
  | _ ->
    let f = fx_value frhs in
    FV
      (fun fr ->
        let rv = f fr in
        let v = fast_combine ty op !cell rv in
        cell := v;
        v)

(* Typed fast assignment through memory: the (root, offset) decomposition
   plus {!Mem.get_f}/[set_f]/[get_i]/[set_i] keep float/int element stores
   allocation-free.  Address components evaluate before the rhs, like the
   modeled [compile_assign]. *)
let fast_assign_mem ty op (root : frame -> Mem.ptr) (off : frame -> int)
    (frhs : fx) : fx =
  let frhs = fx_norm frhs in
  match (op, ty) with
  | Ast.OpAssign, (Ast.Float | Ast.Double) -> (
    match frhs with
    | FV f ->
      FV
        (fun fr ->
          let k = off fr in
          let p = root fr in
          let v = coerce ty (f fr) in
          Mem.poke_at p k v;
          v)
    | _ ->
      let f = fx_float frhs in
      FF
        (fun fr ->
          let k = off fr in
          let p = root fr in
          let x = f fr in
          Mem.set_f p k x;
          x))
  | Ast.OpAssign, (Ast.Int | Ast.Char) -> (
    match frhs with
    | FV f ->
      FV
        (fun fr ->
          let k = off fr in
          let p = root fr in
          let v = coerce ty (f fr) in
          Mem.poke_at p k v;
          v)
    | _ ->
      let f = fx_int frhs in
      FI
        (fun fr ->
          let k = off fr in
          let p = root fr in
          let x = f fr in
          Mem.set_i p k x;
          x))
  | Ast.OpAssign, _ ->
    let f = fx_value frhs in
    FV
      (fun fr ->
        let k = off fr in
        let p = root fr in
        let v = coerce ty (f fr) in
        Mem.poke_at p k v;
        v)
  | ( (Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign),
      (Ast.Float | Ast.Double) ) ->
    let f = fx_float frhs in
    let opf : float -> float -> float =
      match op with
      | Ast.OpAddAssign -> ( +. )
      | Ast.OpSubAssign -> ( -. )
      | Ast.OpMulAssign -> ( *. )
      | _ -> ( /. )
    in
    FF
      (fun fr ->
        let k = off fr in
        let p = root fr in
        let a = Mem.get_f p k in
        let b = f fr in
        let x = opf a b in
        Mem.set_f p k x;
        x)
  | ( (Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign
      | Ast.OpModAssign),
      (Ast.Int | Ast.Char) ) ->
    let f = fx_int frhs in
    FI
      (fun fr ->
        let k = off fr in
        let p = root fr in
        let a = Mem.get_i p k in
        let b = f fr in
        let x =
          match op with
          | Ast.OpAddAssign -> a + b
          | Ast.OpSubAssign -> a - b
          | Ast.OpMulAssign -> a * b
          | Ast.OpDivAssign ->
            if b = 0 then Mem.fault "division by zero" else a / b
          | _ -> if b = 0 then Mem.fault "modulo by zero" else a mod b
        in
        Mem.set_i p k x;
        x)
  | _ ->
    let f = fx_value frhs in
    FV
      (fun fr ->
        let k = off fr in
        let p = root fr in
        let old = Mem.peek_at p k in
        let rv = f fr in
        let v = fast_combine ty op old rv in
        Mem.poke_at p k v;
        v)

(* ------------------------------------------------------------------ *)
(* Expression compilation *)

(* Entry point: dispatch on the plan-time variant.  The dispatch happens
   once, while compiling — the emitted closures contain no instr checks. *)
let rec compile_expr cenv (e : Ast.expr) : (frame -> Mem.value) * Ast.ctype =
  if is_fast cenv.rt then begin
    let fx, ty = fast_expr cenv e in
    (fx_value fx, ty)
  end
  else compile_expr_m cenv e

(* boolean of a condition expression, unboxed when fast *)
and compile_cond cenv e : frame -> bool =
  if is_fast cenv.rt then fast_cond cenv e
  else begin
    let f, _ = compile_expr_m cenv e in
    fun fr -> Mem.truthy (f fr)
  end

(* A condition position compiles comparisons straight to a boolean
   closure: same operand order and conversions as [fast_binop]'s
   comparison arms, minus the 0/1 materialization and the [fx_bool]
   wrapper. *)
and fast_cond cenv e : frame -> bool =
  match e.Ast.edesc with
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op), a, b)
    -> (
    let fa, ta = fast_expr cenv a in
    let fb, tb = fast_expr cenv b in
    let ta = resolve cenv ta and tb = resolve cenv tb in
    let is_ptr t = match t with Ast.Ptr _ | Ast.Array _ -> true | _ -> false in
    if is_ptr ta || is_ptr tb then begin
      (* pointer comparisons: by synthetic address; null compares as 0
         (cf. the matching [fast_binop] arm) *)
      let va = fx_value fa and vb = fx_value fb in
      let addr v =
        match v with
        | Mem.VPtr p -> Mem.addr_of p
        | Mem.VNull -> 0
        | v -> Mem.to_int v
      in
      let f =
        match op with
        | Ast.Lt -> ( < )
        | Ast.Le -> ( <= )
        | Ast.Gt -> ( > )
        | Ast.Ge -> ( >= )
        | Ast.Eq -> ( = )
        | _ -> ( <> )
      in
      fun fr ->
        let b = addr (vb fr) in
        f (addr (va fr)) b
    end
    else if is_floaty (promote ta tb) then begin
      let x = fx_float fa and y = fx_float fb in
      match op with
      | Ast.Lt ->
        fun fr ->
          let b = y fr in
          x fr < b
      | Ast.Le ->
        fun fr ->
          let b = y fr in
          x fr <= b
      | Ast.Gt ->
        fun fr ->
          let b = y fr in
          x fr > b
      | Ast.Ge ->
        fun fr ->
          let b = y fr in
          x fr >= b
      | Ast.Eq ->
        fun fr ->
          let b = y fr in
          x fr = b
      | _ ->
        fun fr ->
          let b = y fr in
          x fr <> b
    end
    else begin
      let x = fx_int fa and y = fx_int fb in
      match op with
      | Ast.Lt ->
        fun fr ->
          let b = y fr in
          x fr < b
      | Ast.Le ->
        fun fr ->
          let b = y fr in
          x fr <= b
      | Ast.Gt ->
        fun fr ->
          let b = y fr in
          x fr > b
      | Ast.Ge ->
        fun fr ->
          let b = y fr in
          x fr >= b
      | Ast.Eq ->
        fun fr ->
          let b = y fr in
          x fr = b
      | _ ->
        fun fr ->
          let b = y fr in
          x fr <> b
    end)
  | _ -> fx_bool (fst (fast_expr cenv e))

(* evaluate for effect only *)
and compile_effect cenv e : frame -> unit =
  if is_fast cenv.rt then fast_effect cenv e
  else begin
    let f, _ = compile_expr_m cenv e in
    fun fr -> ignore (f fr)
  end

(* A statement-position expression drops its value, so the hot shapes
   compile to direct effect closures: slot increments without the result
   box, element stores fused with the address decomposition.  Every arm
   mirrors the corresponding value-producing compiler exactly. *)
and fast_effect cenv e : frame -> unit =
  match e.Ast.edesc with
  | Ast.IncDec { arg = { Ast.edesc = Ast.Ident n; _ }; inc; _ } -> (
    match lookup_local cenv n with
    | Some (slot, (Ast.Int | Ast.Char)) ->
      let d = if inc then 1 else -1 in
      fun fr -> fr.(slot) <- Mem.VInt (Mem.to_int fr.(slot) + d)
    | Some (slot, (Ast.Float | Ast.Double)) ->
      let d = if inc then 1.0 else -1.0 in
      fun fr -> fr.(slot) <- Mem.VFloat (Mem.to_float fr.(slot) +. d)
    | _ -> fx_unit (fst (fast_expr cenv e)))
  | Ast.Assign
      ( Ast.OpAssign,
        { Ast.edesc = Ast.Ident n; _ },
        {
          Ast.edesc =
            Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op2), l2, x);
          _;
        } )
    when (match lookup_local cenv n with
         | Some (_, (Ast.Float | Ast.Double)) -> true
         | _ -> false)
         && (match l2.Ast.edesc with Ast.Ident m -> m = n | _ -> false)
         && scalar_arith cenv x ->
    (* in-place slot update s = s ⊗ e: one closure, no boxed result; the
       slot reads back after [e] exactly as the modeled right-to-left
       operand order does *)
    let s = match lookup_local cenv n with Some (s, _) -> s | None -> assert false in
    let g = fast_fclo_or cenv x in
    fun fr ->
      let b = g fr in
      let a = Mem.to_float fr.(s) in
      fr.(s) <-
        Mem.VFloat
          (match op2 with
          | Ast.Add -> a +. b
          | Ast.Sub -> a -. b
          | Ast.Mul -> a *. b
          | _ -> a /. b)
  | Ast.Assign
      ( ((Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign) as op2),
        { Ast.edesc = Ast.Ident n; _ },
        rhs )
    when (match lookup_local cenv n with
         | Some (_, (Ast.Float | Ast.Double)) -> true
         | _ -> false)
         && scalar_arith cenv rhs ->
    let s = match lookup_local cenv n with Some (s, _) -> s | None -> assert false in
    let g = fast_fclo_or cenv rhs in
    fun fr ->
      let b = g fr in
      let a = Mem.to_float fr.(s) in
      fr.(s) <-
        Mem.VFloat
          (match op2 with
          | Ast.OpAddAssign -> a +. b
          | Ast.OpSubAssign -> a -. b
          | Ast.OpMulAssign -> a *. b
          | _ -> a /. b)
  | Ast.Assign (Ast.OpAssign, ({ Ast.edesc = Ast.Index _; _ } as lhs), rhs) -> (
    let br, bo, ty = fast_addr_opt cenv lhs in
    let ty = resolve cenv ty in
    match ty with
    | Ast.Float | Ast.Double -> (
      (* A[...] = A[...] ⊗ e with a constant root and a slot-built offset
         reuses one address computation for the load and the store: the
         guards ensure [e] cannot disturb the reused parts (constant root;
         offsets read only frame slots, unreachable from [e] without a
         local write). *)
      let rmw =
        match (br, bo, rhs.Ast.edesc) with
        | ( RConst _,
            (KConst _ | K1 _ | K2 _),
            Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op2), l2, x) )
          when same_lval lhs l2 && no_local_writes x && scalar_arith cenv x ->
          Some (op2, x)
        | _ -> None
      in
      match rmw with
      | Some (op2, x) -> fused_rmw_f br bo op2 (fast_fclo_or cenv x)
      | None -> (
        match fast_fclo cenv rhs with
        | Some g -> fused_set_f br bo g
        | None -> (
          match fx_norm (fst (fast_expr cenv rhs)) with
          | FV f ->
            let root = froot_clo br and off = foff_clo bo in
            fun fr ->
              let k = off fr in
              let p = root fr in
              let v = coerce ty (f fr) in
              Mem.poke_at p k v
          | frhs -> fused_set_f br bo (fx_float frhs))))
    | Ast.Int | Ast.Char -> (
      let rmw =
        match (br, bo, rhs.Ast.edesc) with
        | ( RConst _,
            (KConst _ | K1 _ | K2 _),
            Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul) as op2), l2, x) )
          when same_lval lhs l2 && no_local_writes x
               && (match resolve cenv (snd (fast_expr_ty cenv x)) with
                  | Ast.Int | Ast.Char -> true
                  | _ -> false) ->
          Some (op2, x)
        | _ -> None
      in
      match rmw with
      | Some (op2, x) ->
        let root = froot_clo br and off = foff_clo bo in
        let g = fx_int (fst (fast_expr cenv x)) in
        fun fr ->
          let j = off fr in
          let p = root fr in
          let b = g fr in
          let a = Mem.get_i p j in
          Mem.set_i p j
            (match op2 with Ast.Add -> a + b | Ast.Sub -> a - b | _ -> a * b)
      | None -> (
        match fx_norm (fst (fast_expr cenv rhs)) with
        | FV f ->
          let root = froot_clo br and off = foff_clo bo in
          fun fr ->
            let k = off fr in
            let p = root fr in
            let v = coerce ty (f fr) in
            Mem.poke_at p k v
        | frhs -> fused_set_i br bo (fx_int frhs)))
    | _ ->
      let f = fx_value (fst (fast_expr cenv rhs)) in
      let root = froot_clo br and off = foff_clo bo in
      fun fr ->
        let k = off fr in
        let p = root fr in
        let v = coerce ty (f fr) in
        Mem.poke_at p k v)
  | Ast.Assign
      ( (( Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign
         | Ast.OpModAssign ) as op2),
        ({ Ast.edesc = Ast.Index _; _ } as lhs),
        rhs ) -> (
    let br, bo, ty = fast_addr_opt cenv lhs in
    let ty = resolve cenv ty in
    let root = froot_clo br and off = foff_clo bo in
    match (ty, op2) with
    | ( (Ast.Float | Ast.Double),
        (Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign) )
      when scalar_arith cenv rhs ->
      let g = fast_fclo_or cenv rhs in
      fun fr ->
        let j = off fr in
        let p = root fr in
        let a = Mem.get_f p j in
        let b = g fr in
        Mem.set_f p j
          (match op2 with
          | Ast.OpAddAssign -> a +. b
          | Ast.OpSubAssign -> a -. b
          | Ast.OpMulAssign -> a *. b
          | _ -> a /. b)
    | _ -> fx_unit (fast_assign_mem ty op2 root off (fst (fast_expr cenv rhs))))
  | _ -> fx_unit (fst (fast_expr cenv e))

(* [e] has a statically scalar arithmetic type (no pointer semantics can
   leak into a fused float node). Type probe only: compiles nothing. *)
and scalar_arith cenv e =
  match resolve cenv (snd (fast_expr_ty cenv e)) with
  | Ast.Int | Ast.Char | Ast.Float | Ast.Double -> true
  | _ -> false

and fast_fclo_or cenv e : frame -> float =
  match fast_fclo cenv e with
  | Some g -> g
  | None -> fx_float (fst (fast_expr cenv e))

(* Unboxed compilation of float arithmetic trees.  A binary node whose
   operands are statically scalar compiles to ONE closure: float element
   loads stay symbolic ([fleaf]), so inside the node the offset and root
   closures return non-allocating values and the loaded floats feed the
   operation without crossing a closure boundary (each crossing would box
   its float).  Only the node's own result is boxed.  Nested nodes
   recurse, so a k-ary chain costs one crossing per node instead of one
   per node and leaf.  Operand order matches the modeled engine: the
   right operand runs entirely first; operands are COMPILED left-first
   (string literals allocate at compile time, in modeled order).
   Returns [None] — having compiled nothing — when the tree is not
   statically float arithmetic. *)
and fast_fclo cenv (e : Ast.expr) : (frame -> float) option =
  match e.Ast.edesc with
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op), a, b) ->
    if
      scalar_arith cenv a && scalar_arith cenv b
      && is_floaty
           (promote
              (resolve cenv (snd (fast_expr_ty cenv a)))
              (resolve cenv (snd (fast_expr_ty cenv b))))
    then begin
      let leaf (x : Ast.expr) : fleaf =
        match x.Ast.edesc with
        | Ast.Index _ -> (
          let r, o, ty = fast_addr_opt cenv x in
          match resolve cenv ty with
          | Ast.Float | Ast.Double -> FlGet (froot_clo r, foff_clo o)
          | _ ->
            let g = fused_get_i r o in
            FlClo (fun fr -> float_of_int (g fr)))
        | Ast.FloatLit (f, _) -> FlClo (fun _ -> f)
        | Ast.IntLit n ->
          let f = float_of_int n in
          FlClo (fun _ -> f)
        | Ast.Ident n -> (
          match lookup_local cenv n with
          | Some (s, _) -> FlClo (fun fr -> Mem.to_float fr.(s))
          | None -> (
            match Hashtbl.find_opt cenv.globals n with
            | Some (GScalar { cell; _ }, _) -> FlClo (fun _ -> Mem.to_float !cell)
            | _ -> FlClo (fx_float (fst (fast_expr cenv x)))))
        | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), _, _) -> (
          match fast_fclo cenv x with
          | Some g -> FlClo g
          | None -> FlClo (fx_float (fst (fast_expr cenv x))))
        | _ -> FlClo (fx_float (fst (fast_expr cenv x)))
      in
      let la = leaf a in
      let lb = leaf b in
      match (la, lb) with
      | FlGet (ra, oa), FlGet (rb, ob) ->
        Some
          (fun fr ->
            let jb = ob fr in
            let pb = rb fr in
            let xb = Mem.get_f pb jb in
            let ja = oa fr in
            let pa = ra fr in
            let xa = Mem.get_f pa ja in
            match op with
            | Ast.Add -> xa +. xb
            | Ast.Sub -> xa -. xb
            | Ast.Mul -> xa *. xb
            | _ -> xa /. xb)
      | FlGet (ra, oa), FlClo cb ->
        Some
          (fun fr ->
            let xb = cb fr in
            let ja = oa fr in
            let pa = ra fr in
            let xa = Mem.get_f pa ja in
            match op with
            | Ast.Add -> xa +. xb
            | Ast.Sub -> xa -. xb
            | Ast.Mul -> xa *. xb
            | _ -> xa /. xb)
      | FlClo ca, FlGet (rb, ob) ->
        Some
          (fun fr ->
            let jb = ob fr in
            let pb = rb fr in
            let xb = Mem.get_f pb jb in
            let xa = ca fr in
            match op with
            | Ast.Add -> xa +. xb
            | Ast.Sub -> xa -. xb
            | Ast.Mul -> xa *. xb
            | _ -> xa /. xb)
      | FlClo ca, FlClo cb ->
        Some
          (fun fr ->
            let xb = cb fr in
            let xa = ca fr in
            match op with
            | Ast.Add -> xa +. xb
            | Ast.Sub -> xa -. xb
            | Ast.Mul -> xa *. xb
            | _ -> xa /. xb)
    end
    else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The modeled/traced expression compiler *)

and compile_expr_m cenv (e : Ast.expr) : (frame -> Mem.value) * Ast.ctype =
  let rt = cenv.rt in
  match e.Ast.edesc with
  | Ast.IntLit n ->
    let v = Mem.VInt n in
    ((fun _ -> v), Ast.Int)
  | Ast.FloatLit (f, single) ->
    let v = Mem.VFloat f in
    ((fun _ -> v), if single then Ast.Float else Ast.Double)
  | Ast.CharLit ch ->
    let v = Mem.VInt (Char.code ch) in
    ((fun _ -> v), Ast.Char)
  | Ast.StrLit s ->
    (* C string: int cells with a NUL terminator *)
    let p = Mem.alloc_ints rt.alloc (String.length s + 1) in
    (match p.Mem.p_obj with
    | Mem.OInts a -> String.iteri (fun i ch -> a.(i) <- Char.code ch) s
    | _ -> ());
    let p = { p with Mem.p_elem_bytes = 1 } in
    register_ptr_region rt.alloc "string" p;
    let v = Mem.VPtr p in
    ((fun _ -> v), Ast.ptr Ast.Char ~const:true)
  | Ast.Ident name -> (
    match lookup_local cenv name with
    | Some (slot, ty) -> (
      match slot_shadow cenv slot ty with
      | None -> ((fun fr -> fr.(slot)), ty)
      | Some (addr, bytes) ->
        (* a shared enclosing-scope scalar read inside a parallel loop: the
           value still comes from the register slot (no cost change), but
           the race detector must see the logical load *)
        let loc = Loc.to_string e.Ast.eloc in
        ( (fun fr ->
            log_access rt loc ~addr ~bytes ~write:false;
            fr.(slot)),
          ty ))
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (GScalar { cell; addr }, ty) ->
        (* the first read charges a load; afterwards the global lives in a
           register for this site (per execution stream) *)
        let memo = Cache.Memo.create ~streams:(n_streams rt) in
        let loc = Loc.to_string e.Ast.eloc in
        let bytes = scalar_bytes (resolve cenv ty) in
        ( (fun _ ->
            log_access rt loc ~addr ~bytes ~write:false;
            let ds = cur rt in
            if not (Cache.Memo.probe memo ~stream:ds.ds_slot addr) then begin
              bump_load ds.ds_counters;
              Cache.access ds.ds_cache addr
            end;
            !cell),
          ty )
      | Some (GArray { view }, ty) ->
        let v = Mem.VPtr view in
        ((fun _ -> v), ty)
      | None -> unsupported "unbound identifier %s" name))
  | Ast.Binop (op, a, b) -> compile_binop cenv e op a b
  | Ast.Unop (op, a) -> (
    let fa, ta = compile_expr cenv a in
    let ta = resolve cenv ta in
    match op with
    | Ast.Neg ->
      if is_floaty ta then
        ( (fun fr ->
            bump_fadd rt;
            Mem.VFloat (-.Mem.to_float (fa fr))),
          ta )
      else
        ( (fun fr ->
            bump_int rt;
            Mem.VInt (-Mem.to_int (fa fr))),
          Ast.Int )
    | Ast.LNot ->
      ( (fun fr ->
          bump_int rt;
          Mem.VInt (if Mem.truthy (fa fr) then 0 else 1)),
        Ast.Int )
    | Ast.BNot ->
      ( (fun fr ->
          bump_int rt;
          Mem.VInt (lnot (Mem.to_int (fa fr)))),
        Ast.Int ))
  | Ast.Assign (op, lhs, rhs) ->
    let run, ty = compile_assign cenv op lhs rhs in
    (run, ty)
  | Ast.Call (fname, args) -> compile_call cenv e.Ast.eloc fname args
  | Ast.Index _ | Ast.Deref _ -> (
    (* rvalue load through the lvalue path *)
    let lv = compile_lval cenv e in
    let ty = resolve cenv (lval_type lv) in
    match (lv, ty) with
    | LMem (addr, _), Ast.Array _ ->
      (* a view: no load, just the address *)
      ((fun fr -> Mem.VPtr (addr fr)), ty)
    | LMem (addr, _), _ ->
      let do_load = memo_load rt (Loc.to_string e.Ast.eloc) in
      ((fun fr -> do_load (addr fr)), ty)
    | (LSlot _ | LGlobal _), _ -> assert false)
  | Ast.AddrOf inner -> (
    let lv = compile_lval cenv inner in
    match lv with
    | LMem (addr, ty) -> ((fun fr -> Mem.VPtr (addr fr)), Ast.ptr ty)
    | LSlot _ | LGlobal _ -> unsupported "address-of a register variable")
  | Ast.Cast (ty, inner) -> (
    let ty = resolve cenv ty in
    (* allocation idiom: (T* ) malloc(n) *)
    match (ty, strip_casts inner) with
    | Ast.Ptr { elt; _ }, { Ast.edesc = Ast.Call (("malloc" | "calloc") as fn, args); _ }
      ->
      compile_malloc cenv fn elt args
    | _ ->
      let fi, _ti = compile_expr cenv inner in
      (match ty with
      | Ast.Int | Ast.Char ->
        ( (fun fr ->
            match fi fr with
            | Mem.VInt i -> Mem.VInt i
            | Mem.VFloat f -> Mem.VInt (int_of_float f)
            | v -> v),
          ty )
      | Ast.Float | Ast.Double ->
        ( (fun fr ->
            match fi fr with
            | Mem.VFloat f -> Mem.VFloat f
            | Mem.VInt i -> Mem.VFloat (float_of_int i)
            | v -> v),
          ty )
      | Ast.Ptr _ ->
        ( (fun fr -> match fi fr with Mem.VInt 0 -> Mem.VNull | v -> v),
          ty )
      | _ -> (fi, ty)))
  | Ast.Cond (cond, t, f) ->
    let fc, _ = compile_expr cenv cond in
    let ft, tt = compile_expr cenv t in
    let ff, _tf = compile_expr cenv f in
    ( (fun fr ->
        bump_branch rt;
        if Mem.truthy (fc fr) then ft fr else ff fr),
      tt )
  | Ast.SizeofType ty ->
    let v = Mem.VInt (type_bytes cenv ty) in
    ((fun _ -> v), Ast.Int)
  | Ast.SizeofExpr inner ->
    (* typeof only: no evaluation *)
    let _, ti = compile_expr cenv inner in
    let v = Mem.VInt (type_bytes cenv ti) in
    ((fun _ -> v), Ast.Int)
  | Ast.IncDec { pre; inc; arg } ->
    let lv = compile_lval cenv arg in
    let ty = resolve cenv (lval_type lv) in
    let delta = if inc then 1 else -1 in
    let apply old =
      match (ty, old) with
      | (Ast.Float | Ast.Double), v ->
        bump_fadd rt;
        Mem.VFloat (Mem.to_float v +. float_of_int delta)
      | Ast.Ptr _, Mem.VPtr p ->
        bump_int rt;
        Mem.VPtr (Mem.ptr_add p delta)
      | _, v ->
        bump_int rt;
        Mem.VInt (Mem.to_int v + delta)
    in
    let run =
      match lv with
      | LSlot (slot, _) -> (
        match slot_shadow cenv slot ty with
        | None ->
          fun fr ->
            let old = fr.(slot) in
            let nv = apply old in
            fr.(slot) <- nv;
            if pre then nv else old
        | Some (addr, bytes) ->
          let loc = Loc.to_string e.Ast.eloc in
          fun fr ->
            log_access rt loc ~addr ~bytes ~write:false;
            log_access rt loc ~addr ~bytes ~write:true;
            let old = fr.(slot) in
            let nv = apply old in
            fr.(slot) <- nv;
            if pre then nv else old)
      | LGlobal (cell, addr, gty) ->
        let loc = Loc.to_string e.Ast.eloc in
        let bytes = scalar_bytes (resolve cenv gty) in
        fun fr ->
          ignore fr;
          log_access rt loc ~addr ~bytes ~write:false;
          log_access rt loc ~addr ~bytes ~write:true;
          let ds = cur rt in
          bump_load ds.ds_counters;
          bump_store ds.ds_counters;
          Cache.access ds.ds_cache addr;
          let old = !cell in
          let nv = apply old in
          cell := nv;
          if pre then nv else old
      | LMem (faddr, _) ->
        let siteloc = Loc.to_string e.Ast.eloc in
        let do_load = memo_load rt siteloc and do_store = memo_store rt siteloc in
        fun fr ->
          let p = faddr fr in
          let old = do_load p in
          let nv = apply old in
          do_store p nv;
          if pre then nv else old
    in
    (run, ty)
  | Ast.Comma (a, b) ->
    let fa, _ = compile_expr cenv a in
    let fb, tb = compile_expr cenv b in
    ( (fun fr ->
        ignore (fa fr);
        fb fr),
      tb )
  | Ast.Member _ | Ast.Arrow _ ->
    unsupported "struct member access is not executable in this build"

and strip_casts (e : Ast.expr) =
  match e.Ast.edesc with Ast.Cast (_, inner) -> strip_casts inner | _ -> e

(* ------------------------------------------------------------------ *)

and compile_binop cenv e op a b =
  let rt = cenv.rt in
  let fa, ta = compile_expr cenv a in
  let fb, tb = compile_expr cenv b in
  let ta = resolve cenv ta and tb = resolve cenv tb in
  let arith = promote ta tb in
  let is_ptr t = match t with Ast.Ptr _ | Ast.Array _ -> true | _ -> false in
  match op with
  | Ast.Add when is_ptr ta || is_ptr tb ->
    let fp, fi, pty = if is_ptr ta then (fa, fb, ta) else (fb, fa, tb) in
    let _, stride, _ = subscript_info cenv pty in
    ( (fun fr ->
        bump_int rt;
        Mem.VPtr (Mem.ptr_add (Mem.to_ptr (fp fr)) (stride * Mem.to_int (fi fr)))),
      pty )
  | Ast.Sub when is_ptr ta && is_ptr tb ->
    ( (fun fr ->
        bump_int rt;
        Mem.VInt ((Mem.to_ptr (fa fr)).Mem.p_off - (Mem.to_ptr (fb fr)).Mem.p_off)),
      Ast.Int )
  | Ast.Sub when is_ptr ta ->
    let _, stride, _ = subscript_info cenv ta in
    ( (fun fr ->
        bump_int rt;
        Mem.VPtr (Mem.ptr_add (Mem.to_ptr (fa fr)) (-stride * Mem.to_int (fb fr)))),
      ta )
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    if is_floaty arith then begin
      let run =
        match op with
        | Ast.Add ->
          fun fr ->
            bump_fadd rt;
            Mem.VFloat (Mem.to_float (fa fr) +. Mem.to_float (fb fr))
        | Ast.Sub ->
          fun fr ->
            bump_fadd rt;
            Mem.VFloat (Mem.to_float (fa fr) -. Mem.to_float (fb fr))
        | Ast.Mul ->
          fun fr ->
            bump_fmul rt;
            Mem.VFloat (Mem.to_float (fa fr) *. Mem.to_float (fb fr))
        | Ast.Div ->
          fun fr ->
            bump_fdiv rt;
            Mem.VFloat (Mem.to_float (fa fr) /. Mem.to_float (fb fr))
        | _ -> assert false
      in
      (run, arith)
    end
    else begin
      let run =
        match op with
        | Ast.Add ->
          fun fr ->
            bump_int rt;
            Mem.VInt (Mem.to_int (fa fr) + Mem.to_int (fb fr))
        | Ast.Sub ->
          fun fr ->
            bump_int rt;
            Mem.VInt (Mem.to_int (fa fr) - Mem.to_int (fb fr))
        | Ast.Mul ->
          fun fr ->
            bump_int rt;
            Mem.VInt (Mem.to_int (fa fr) * Mem.to_int (fb fr))
        | Ast.Div ->
          fun fr ->
            bump_int_n rt 20;
            let d = Mem.to_int (fb fr) in
            if d = 0 then Mem.fault "integer division by zero at %s" (Loc.to_string e.Ast.eloc)
            else Mem.VInt (Mem.to_int (fa fr) / d)
        | _ -> assert false
      in
      (run, Ast.Int)
    end
  | Ast.Mod ->
    ( (fun fr ->
        bump_int_n rt 20;
        let d = Mem.to_int (fb fr) in
        if d = 0 then Mem.fault "integer modulo by zero at %s" (Loc.to_string e.Ast.eloc)
        else Mem.VInt (Mem.to_int (fa fr) mod d)),
      Ast.Int )
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    let cmp_float f =
      fun fr ->
        bump_int rt;
        Mem.VInt (if f (Mem.to_float (fa fr)) (Mem.to_float (fb fr)) then 1 else 0)
    in
    let cmp_int f =
      fun fr ->
        bump_int rt;
        Mem.VInt (if f (Mem.to_int (fa fr)) (Mem.to_int (fb fr)) then 1 else 0)
    in
    let run =
      if is_floaty arith && not (is_ptr ta || is_ptr tb) then
        match op with
        | Ast.Lt -> cmp_float ( < )
        | Ast.Le -> cmp_float ( <= )
        | Ast.Gt -> cmp_float ( > )
        | Ast.Ge -> cmp_float ( >= )
        | Ast.Eq -> cmp_float ( = )
        | Ast.Ne -> cmp_float ( <> )
        | _ -> assert false
      else if is_ptr ta || is_ptr tb then
        (* pointer comparisons: by synthetic address; null compares as 0 *)
        let addr v =
          match v with
          | Mem.VPtr p -> Mem.addr_of p
          | Mem.VNull -> 0
          | v -> Mem.to_int v
        in
        let f =
          match op with
          | Ast.Lt -> ( < )
          | Ast.Le -> ( <= )
          | Ast.Gt -> ( > )
          | Ast.Ge -> ( >= )
          | Ast.Eq -> ( = )
          | Ast.Ne -> ( <> )
          | _ -> assert false
        in
        fun fr ->
          bump_int rt;
          Mem.VInt (if f (addr (fa fr)) (addr (fb fr)) then 1 else 0)
      else
        match op with
        | Ast.Lt -> cmp_int ( < )
        | Ast.Le -> cmp_int ( <= )
        | Ast.Gt -> cmp_int ( > )
        | Ast.Ge -> cmp_int ( >= )
        | Ast.Eq -> cmp_int ( = )
        | Ast.Ne -> cmp_int ( <> )
        | _ -> assert false
    in
    (run, Ast.Int)
  | Ast.LAnd ->
    ( (fun fr ->
        bump_branch rt;
        if Mem.truthy (fa fr) then Mem.VInt (if Mem.truthy (fb fr) then 1 else 0)
        else Mem.VInt 0),
      Ast.Int )
  | Ast.LOr ->
    ( (fun fr ->
        bump_branch rt;
        if Mem.truthy (fa fr) then Mem.VInt 1
        else Mem.VInt (if Mem.truthy (fb fr) then 1 else 0)),
      Ast.Int )
  | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
    let f =
      match op with
      | Ast.BAnd -> ( land )
      | Ast.BOr -> ( lor )
      | Ast.BXor -> ( lxor )
      | Ast.Shl -> ( lsl )
      | Ast.Shr -> ( asr )
      | _ -> assert false
    in
    ( (fun fr ->
        bump_int rt;
        Mem.VInt (f (Mem.to_int (fa fr)) (Mem.to_int (fb fr)))),
      Ast.Int )

(* ------------------------------------------------------------------ *)

and compile_lval cenv (e : Ast.expr) : lval =
  let rt = cenv.rt in
  match e.Ast.edesc with
  | Ast.Ident name -> (
    match lookup_local cenv name with
    | Some (slot, ty) -> LSlot (slot, ty)
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (GScalar { cell; addr }, ty) -> LGlobal (cell, addr, ty)
      | Some (GArray { view }, ty) ->
        LMem ((fun _ -> view), ty)
      | None -> unsupported "unbound identifier %s" name))
  | Ast.Index (base, idx) -> (
    let fb, tb = compile_expr cenv base in
    let fi, _ = compile_expr cenv idx in
    let elt, stride, is_view = subscript_info cenv tb in
    if is_view then
      LMem
        ( (fun fr ->
            bump_int rt;
            Mem.ptr_add (Mem.to_ptr (fb fr)) (stride * Mem.to_int (fi fr))),
          elt )
    else
      LMem
        ( (fun fr ->
            bump_int rt;
            Mem.ptr_add (Mem.to_ptr (fb fr)) (Mem.to_int (fi fr))),
          elt ))
  | Ast.Deref inner -> (
    let fi, ti = compile_expr cenv inner in
    let elt, _, _ = subscript_info cenv ti in
    LMem ((fun fr -> Mem.to_ptr (fi fr)), elt))
  | Ast.Cast (_, inner) -> compile_lval cenv inner
  | _ -> unsupported "unsupported lvalue: %s" (Ast_printer.expr_to_string e)

(* ------------------------------------------------------------------ *)

and compile_assign cenv op lhs rhs =
  let rt = cenv.rt in
  let lv = compile_lval cenv lhs in
  let ty = resolve cenv (lval_type lv) in
  let frhs, _trhs = compile_expr cenv rhs in
  let combine old rv =
    match op with
    | Ast.OpAssign -> coerce ty rv
    | Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign ->
      if is_floaty ty then begin
        (match op with
        | Ast.OpMulAssign | Ast.OpDivAssign -> bump_fmul rt
        | _ -> bump_fadd rt);
        let a = Mem.to_float old and b = Mem.to_float rv in
        Mem.VFloat
          (match op with
          | Ast.OpAddAssign -> a +. b
          | Ast.OpSubAssign -> a -. b
          | Ast.OpMulAssign -> a *. b
          | Ast.OpDivAssign -> a /. b
          | _ -> assert false)
      end
      else begin
        bump_int rt;
        let a = Mem.to_int old and b = Mem.to_int rv in
        Mem.VInt
          (match op with
          | Ast.OpAddAssign -> (
            match (ty, old) with
            | Ast.Ptr _, Mem.VPtr p ->
              ignore a;
              ignore p;
              0 (* handled below *)
            | _ -> a + b)
          | Ast.OpSubAssign -> a - b
          | Ast.OpMulAssign -> a * b
          | Ast.OpDivAssign -> if b = 0 then Mem.fault "division by zero" else a / b
          | _ -> assert false)
      end
    | Ast.OpModAssign ->
      bump_int rt;
      let b = Mem.to_int rv in
      if b = 0 then Mem.fault "modulo by zero"
      else Mem.VInt (Mem.to_int old mod b)
  in
  (* pointer += int needs special handling *)
  let combine old rv =
    match (ty, old, op) with
    | Ast.Ptr _, Mem.VPtr p, Ast.OpAddAssign ->
      bump_int rt;
      Mem.VPtr (Mem.ptr_add p (Mem.to_int rv))
    | Ast.Ptr _, Mem.VPtr p, Ast.OpSubAssign ->
      bump_int rt;
      Mem.VPtr (Mem.ptr_add p (-Mem.to_int rv))
    | _ -> combine old rv
  in
  let run =
    match lv with
    | LSlot (slot, _) -> (
      match slot_shadow cenv slot ty with
      | None ->
        if op = Ast.OpAssign then fun fr ->
          let v = coerce ty (frhs fr) in
          fr.(slot) <- v;
          v
        else fun fr ->
          let v = combine fr.(slot) (frhs fr) in
          fr.(slot) <- v;
          v
      | Some (addr, bytes) ->
        let loc = Loc.to_string lhs.Ast.eloc in
        if op = Ast.OpAssign then fun fr ->
          let v = coerce ty (frhs fr) in
          log_access rt loc ~addr ~bytes ~write:true;
          fr.(slot) <- v;
          v
        else fun fr ->
          log_access rt loc ~addr ~bytes ~write:false;
          let v = combine fr.(slot) (frhs fr) in
          log_access rt loc ~addr ~bytes ~write:true;
          fr.(slot) <- v;
          v)
    | LGlobal (cell, addr, gty) ->
      let loc = Loc.to_string lhs.Ast.eloc in
      let bytes = scalar_bytes (resolve cenv gty) in
      if op = Ast.OpAssign then fun fr ->
        log_access rt loc ~addr ~bytes ~write:true;
        let ds = cur rt in
        bump_store ds.ds_counters;
        Cache.access ds.ds_cache addr;
        let v = coerce ty (frhs fr) in
        cell := v;
        v
      else fun fr ->
        log_access rt loc ~addr ~bytes ~write:false;
        let ds = cur rt in
        bump_load ds.ds_counters;
        bump_store ds.ds_counters;
        Cache.access ds.ds_cache addr;
        let v = combine !cell (frhs fr) in
        log_access rt loc ~addr ~bytes ~write:true;
        cell := v;
        v
    | LMem (faddr, _) ->
      let siteloc = Loc.to_string lhs.Ast.eloc in
      if op = Ast.OpAssign then begin
        let do_store = memo_store rt siteloc in
        fun fr ->
          let p = faddr fr in
          let v = coerce ty (frhs fr) in
          do_store p v;
          v
      end
      else begin
        let do_load = memo_load rt siteloc and do_store = memo_store rt siteloc in
        fun fr ->
          let p = faddr fr in
          let old = do_load p in
          let v = combine old (frhs fr) in
          do_store p v;
          v
      end
  in
  (run, ty)

(* ------------------------------------------------------------------ *)

and compile_malloc cenv fn elt args =
  let rt = cenv.rt in
  let elt = resolve cenv elt in
  let size_expr =
    match (fn, args) with
    | "malloc", [ sz ] -> compile_expr cenv sz |> fst
    | "calloc", [ n; sz ] ->
      let fn_, _ = compile_expr cenv n and fs, _ = compile_expr cenv sz in
      fun fr -> Mem.VInt (Mem.to_int (fn_ fr) * Mem.to_int (fs fr))
    | _ -> unsupported "bad allocation call"
  in
  let charge =
    (* the fast variant keeps every counter exactly zero — that invariant
       is the differential suite's engagement witness *)
    if is_fast rt then fun _ -> ()
    else
      fun bytes ->
        let counters = (cur rt).ds_counters in
        counters.Cost.builtin_calls <- counters.Cost.builtin_calls + 1;
        counters.Cost.malloc_bytes <- counters.Cost.malloc_bytes + bytes;
        (* allocator + first-touch/page-zeroing cost, the effect behind the
           paper's parallelized initialization loop (Fig. 3) *)
        counters.Cost.extra_cycles <- counters.Cost.extra_cycles + 150 + (bytes / 8)
  in
  let run fr =
    let bytes = Mem.to_int (size_expr fr) in
    charge bytes;
    let p =
      match elt with
      | Ast.Float -> Mem.alloc_floats rt.alloc ~elem_bytes:4 (max 1 (bytes / 4))
      | Ast.Double -> Mem.alloc_floats rt.alloc ~elem_bytes:8 (max 1 (bytes / 8))
      | Ast.Int -> Mem.alloc_ints rt.alloc (max 1 (bytes / 4))
      | Ast.Char -> { (Mem.alloc_ints rt.alloc (max 1 bytes)) with Mem.p_elem_bytes = 1 }
      | Ast.Ptr _ -> Mem.alloc_ptrs rt.alloc (max 1 (bytes / 8))
      | _ -> Mem.alloc_floats rt.alloc ~elem_bytes:8 (max 1 (bytes / 8))
    in
    register_ptr_region rt.alloc "heap" p;
    Mem.VPtr p
  in
  (run, Ast.ptr elt)

and compile_call cenv loc fname args =
  let rt = cenv.rt in
  match fname with
  | "malloc" | "calloc" ->
    (* uncast allocation: treat as bytes of doubles *)
    compile_malloc cenv fname Ast.Double args
  | "free" ->
    let fargs = List.map (fun a -> fst (compile_expr cenv a)) args in
    ( (fun fr ->
        List.iter (fun f -> ignore (f fr)) fargs;
        bump_builtin rt 60;
        Mem.VNull),
      Ast.Void )
  | "printf" -> (
    match args with
    | fmt_e :: rest ->
      let frest = List.map (fun a -> fst (compile_expr cenv a)) rest in
      let ffmt, _ = compile_expr cenv fmt_e in
      ( (fun fr ->
          bump_builtin rt 400;
          let fmt =
            match ffmt fr with Mem.VPtr p -> decode_c_string p | v -> string_of_value v
          in
          run_printf (cur rt).ds_out fmt (List.map (fun f -> f fr) frest);
          Mem.VInt 0),
        Ast.Int )
    | [] -> unsupported "printf with no arguments")
  | "exit" ->
    let fargs = List.map (fun a -> fst (compile_expr cenv a)) args in
    ( (fun fr ->
        let code = match fargs with f :: _ -> Mem.to_int (f fr) | [] -> 0 in
        raise (Return_v (Mem.VInt code))),
      Ast.Void )
  | "__max" | "__min" -> (
    match List.map (fun a -> compile_expr cenv a) args with
    | [ (fa, _); (fb, _) ] ->
      let pick_max = fname = "__max" in
      ( (fun fr ->
          bump_int rt;
          let a = Mem.to_int (fa fr) and b = Mem.to_int (fb fr) in
          Mem.VInt (if pick_max then max a b else min a b)),
        Ast.Int )
    | _ -> unsupported "%s expects two arguments" fname)
  | "__ceild" | "__floord" -> (
    match List.map (fun a -> compile_expr cenv a) args with
    | [ (fa, _); (fb, _) ] ->
      let ceil_mode = fname = "__ceild" in
      ( (fun fr ->
          bump_int_n rt 20;
          let a = Mem.to_int (fa fr) and b = Mem.to_int (fb fr) in
          if b = 0 then Mem.fault "division by zero in %s" fname
          else Mem.VInt (if ceil_mode then ceild a b else floord a b)),
        Ast.Int )
    | _ -> unsupported "%s expects two arguments" fname)
  | "abs" -> (
    match List.map (fun a -> fst (compile_expr cenv a)) args with
    | [ fa ] ->
      ( (fun fr ->
          bump_int rt;
          Mem.VInt (abs (Mem.to_int (fa fr)))),
        Ast.Int )
    | _ -> unsupported "abs expects one argument")
  | _ -> (
    match List.find_opt (fun (n, _, _) -> n = fname) builtin_math with
    | Some (_, f, weight) -> (
      match List.map (fun a -> fst (compile_expr cenv a)) args with
      | [ fa ] ->
        let single = String.length fname > 0 && fname.[String.length fname - 1] = 'f' in
        ( (fun fr ->
            bump_builtin rt weight;
            Mem.VFloat (f (Mem.to_float (fa fr)))),
          if single then Ast.Float else Ast.Double )
      | _ -> unsupported "%s expects one argument" fname)
    | None -> (
      match List.find_opt (fun (n, _, _) -> n = fname) builtin_math2 with
      | Some (_, f, weight) -> (
        match List.map (fun a -> fst (compile_expr cenv a)) args with
        | [ fa; fb ] ->
          ( (fun fr ->
              bump_builtin rt weight;
              Mem.VFloat (f (Mem.to_float (fa fr)) (Mem.to_float (fb fr)))),
            Ast.Double )
        | _ -> unsupported "%s expects two arguments" fname)
      | None -> (
        (* user function *)
        match Hashtbl.find_opt cenv.funcs fname with
        | Some entry ->
          let fargs = Array.of_list (List.map (fun a -> fst (compile_expr cenv a)) args) in
          let n = Array.length fargs in
          (* a -O2-style backend inlines tiny leaf callees; such calls cost
             almost nothing, while calls to functions with control flow keep
             the full frame set-up cost (cf. the perf comparison in paper
             §4.3.2, where the out-of-line stencil doubles the dynamic
             instruction count) *)
          let overhead = call_overhead_cycles entry.fe_def in
          ( (fun fr ->
              bump_user_call rt overhead;
              let argv = Array.make (max n 1) Mem.VNull in
              for i = 0 to n - 1 do
                argv.(i) <- fargs.(i) fr
              done;
              match entry.fe_run with
              | Some run -> run argv
              | None -> Mem.fault "call to undefined function %s" fname),
            resolve cenv entry.fe_def.Ast.f_ret )
        | None ->
          unsupported "call to unknown function %s at %s" fname (Loc.to_string loc))))

(* ------------------------------------------------------------------ *)
(* The fast (uninstrumented) expression compiler.

   Each case mirrors its modeled twin above exactly — same evaluation
   order, same conversions, same fault messages — minus every counter
   bump, cache probe, promotion memo and access log, with intermediate
   results kept unboxed wherever the static C type allows.  Divergence
   between the two compilers is a bug; the fastpath differential suite
   pins them byte-identical over the workload gallery and fuzz corpus. *)

and fast_expr cenv (e : Ast.expr) : fx * Ast.ctype =
  let rt = cenv.rt in
  match e.Ast.edesc with
  | Ast.IntLit n -> (FI (fun _ -> n), Ast.Int)
  | Ast.FloatLit (f, single) ->
    (FF (fun _ -> f), if single then Ast.Float else Ast.Double)
  | Ast.CharLit ch ->
    let c = Char.code ch in
    (FI (fun _ -> c), Ast.Char)
  | Ast.StrLit s ->
    (* C string: int cells with a NUL terminator *)
    let p = Mem.alloc_ints rt.alloc (String.length s + 1) in
    (match p.Mem.p_obj with
    | Mem.OInts a -> String.iteri (fun i ch -> a.(i) <- Char.code ch) s
    | _ -> ());
    let p = { p with Mem.p_elem_bytes = 1 } in
    register_ptr_region rt.alloc "string" p;
    let v = Mem.VPtr p in
    (FV (fun _ -> v), Ast.ptr Ast.Char ~const:true)
  | Ast.Ident name -> (
    (* slots and global cells hold boxed values — the polymorphic seam.
       Conversion to int/float happens inside the consuming operator,
       exactly where the modeled engine applies it, so (int)ptr casts and
       pointer-in-int-slot programs behave identically. *)
    match lookup_local cenv name with
    | Some (slot, ty) -> (FS slot, ty)
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (GScalar { cell; _ }, ty) -> (FG cell, ty)
      | Some (GArray { view }, ty) ->
        let v = Mem.VPtr view in
        (FV (fun _ -> v), ty)
      | None -> unsupported "unbound identifier %s" name))
  | Ast.Binop (op, a, b) -> fast_binop cenv e op a b
  | Ast.Unop (op, a) -> (
    let fa, ta = fast_expr cenv a in
    let ta = resolve cenv ta in
    match op with
    | Ast.Neg ->
      if is_floaty ta then begin
        let f = fx_float fa in
        (FF (fun fr -> -.f fr), ta)
      end
      else begin
        let f = fx_int fa in
        (FI (fun fr -> -f fr), Ast.Int)
      end
    | Ast.LNot ->
      let f = fx_bool fa in
      (FI (fun fr -> if f fr then 0 else 1), Ast.Int)
    | Ast.BNot ->
      let f = fx_int fa in
      (FI (fun fr -> lnot (f fr)), Ast.Int))
  | Ast.Assign (op, lhs, rhs) -> fast_assign cenv op lhs rhs
  | Ast.Call (fname, args) -> fast_call cenv e.Ast.eloc fname args
  | Ast.Index _ -> (
    (* rvalue load, fused with the symbolic address decomposition *)
    let br, bo, ty = fast_addr_opt cenv e in
    let ty = resolve cenv ty in
    match ty with
    | Ast.Array _ ->
      (* a view: no load, just the address *)
      let root = froot_clo br and off = foff_clo bo in
      ( FV
          (fun fr ->
            let k = off fr in
            Mem.VPtr (Mem.at (root fr) k)),
        ty )
    | Ast.Float | Ast.Double -> (FF (fused_get_f br bo), ty)
    | Ast.Int | Ast.Char -> (FI (fused_get_i br bo), ty)
    | _ ->
      let root = froot_clo br and off = foff_clo bo in
      ( FV
          (fun fr ->
            let k = off fr in
            Mem.peek_at (root fr) k),
        ty ))
  | Ast.Deref _ -> (
    (* rvalue load through the lvalue path *)
    match fast_lval cenv e with
    | FLMem (root, off, ty) -> (
      let ty = resolve cenv ty in
      match ty with
      | Ast.Array _ ->
        ( FV
            (fun fr ->
              let k = off fr in
              Mem.VPtr (Mem.at (root fr) k)),
          ty )
      | Ast.Float | Ast.Double ->
        ( FF
            (fun fr ->
              let k = off fr in
              Mem.get_f (root fr) k),
          ty )
      | Ast.Int | Ast.Char ->
        ( FI
            (fun fr ->
              let k = off fr in
              Mem.get_i (root fr) k),
          ty )
      | _ ->
        ( FV
            (fun fr ->
              let k = off fr in
              Mem.peek_at (root fr) k),
          ty ))
    | FLSlot _ | FLGlobal _ -> assert false)
  | Ast.AddrOf inner -> (
    match fast_lval cenv inner with
    | FLMem (root, off, ty) ->
      ( FV
          (fun fr ->
            let k = off fr in
            Mem.VPtr (Mem.at (root fr) k)),
        Ast.ptr ty )
    | FLSlot _ | FLGlobal _ -> unsupported "address-of a register variable")
  | Ast.Cast (ty, inner) -> (
    let ty = resolve cenv ty in
    (* allocation idiom: (T* ) malloc(n) *)
    match (ty, strip_casts inner) with
    | Ast.Ptr { elt; _ }, { Ast.edesc = Ast.Call (("malloc" | "calloc") as fn, args); _ }
      ->
      let run, rty = compile_malloc cenv fn elt args in
      (FV run, rty)
    | _ -> (
      (* casts pass non-scalar values through unchanged on the modeled
         path, so a symbolic slot read must surface its raw value here *)
      let fi, _ti = fast_expr cenv inner in
      let fi = fx_norm fi in
      match ty with
      | Ast.Int | Ast.Char -> (
        match fi with
        | FI f -> (FI f, ty)
        | FF f -> (FI (fun fr -> int_of_float (f fr)), ty)
        | fv ->
          let f = fx_value fv in
          ( FV
              (fun fr ->
                match f fr with
                | Mem.VInt i -> Mem.VInt i
                | Mem.VFloat x -> Mem.VInt (int_of_float x)
                | v -> v),
            ty ))
      | Ast.Float | Ast.Double -> (
        match fi with
        | FF f -> (FF f, ty)
        | FI f -> (FF (fun fr -> float_of_int (f fr)), ty)
        | fv ->
          let f = fx_value fv in
          ( FV
              (fun fr ->
                match f fr with
                | Mem.VFloat x -> Mem.VFloat x
                | Mem.VInt i -> Mem.VFloat (float_of_int i)
                | v -> v),
            ty ))
      | Ast.Ptr _ -> (
        match fi with
        | FI f ->
          ( FV (fun fr -> match f fr with 0 -> Mem.VNull | i -> Mem.VInt i),
            ty )
        | FF _ -> (FV (fx_value fi), ty)
        | fv ->
          let f = fx_value fv in
          ( FV (fun fr -> match f fr with Mem.VInt 0 -> Mem.VNull | v -> v),
            ty ))
      | _ -> (fi, ty)))
  | Ast.Cond (cond, t, f) -> (
    let fc = fx_bool (fst (fast_expr cenv cond)) in
    let ft, tt = fast_expr cenv t in
    let ff, _tf = fast_expr cenv f in
    (* the modeled engine returns the branch value uncoerced, so the FV
       join must not coerce either *)
    match (ft, ff) with
    | FI a, FI b -> (FI (fun fr -> if fc fr then a fr else b fr), tt)
    | FF a, FF b -> (FF (fun fr -> if fc fr then a fr else b fr), tt)
    | _ ->
      let a = fx_value ft and b = fx_value ff in
      (FV (fun fr -> if fc fr then a fr else b fr), tt))
  | Ast.SizeofType ty ->
    let n = type_bytes cenv ty in
    (FI (fun _ -> n), Ast.Int)
  | Ast.SizeofExpr inner ->
    (* typeof only: no evaluation *)
    let _, ti = fast_expr cenv inner in
    let n = type_bytes cenv ti in
    (FI (fun _ -> n), Ast.Int)
  | Ast.IncDec { pre; inc; arg } -> fast_incdec cenv pre inc arg
  | Ast.Comma (a, b) -> (
    let fa = fx_unit (fst (fast_expr cenv a)) in
    let fb, tb = fast_expr cenv b in
    match fb with
    | FI f ->
      ( FI
          (fun fr ->
            fa fr;
            f fr),
        tb )
    | FF f ->
      ( FF
          (fun fr ->
            fa fr;
            f fr),
        tb )
    | _ ->
      let f = fx_value fb in
      ( FV
          (fun fr ->
            fa fr;
            f fr),
        tb ))
  | Ast.Member _ | Ast.Arrow _ ->
    unsupported "struct member access is not executable in this build"

and fast_binop cenv e op a b : fx * Ast.ctype =
  let fa, ta = fast_expr cenv a in
  let fb, tb = fast_expr cenv b in
  let ta = resolve cenv ta and tb = resolve cenv tb in
  let arith = promote ta tb in
  let is_ptr t = match t with Ast.Ptr _ | Ast.Array _ -> true | _ -> false in
  (* explicit [let b = y fr in x fr <op> b] everywhere: OCaml evaluates
     application operands right-to-left, so the modeled closures run the
     right operand first — the fast twins must too *)
  match op with
  | Ast.Add when is_ptr ta || is_ptr tb ->
    let fp, fi, pty = if is_ptr ta then (fa, fb, ta) else (fb, fa, tb) in
    let _, stride, _ = subscript_info cenv pty in
    let fp = fx_ptr fp and fi = fx_int fi in
    ( FV
        (fun fr ->
          let k = fi fr in
          Mem.VPtr (Mem.ptr_add (fp fr) (stride * k))),
      pty )
  | Ast.Sub when is_ptr ta && is_ptr tb ->
    let fpa = fx_ptr fa and fpb = fx_ptr fb in
    ( FI
        (fun fr ->
          let b = (fpb fr).Mem.p_off in
          (fpa fr).Mem.p_off - b),
      Ast.Int )
  | Ast.Sub when is_ptr ta ->
    let _, stride, _ = subscript_info cenv ta in
    let fp = fx_ptr fa and fi = fx_int fb in
    ( FV
        (fun fr ->
          let k = fi fr in
          Mem.VPtr (Mem.ptr_add (fp fr) (-stride * k))),
      ta )
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    if is_floaty arith then begin
      let x = fx_float fa and y = fx_float fb in
      let run =
        match op with
        | Ast.Add ->
          fun fr ->
            let b = y fr in
            x fr +. b
        | Ast.Sub ->
          fun fr ->
            let b = y fr in
            x fr -. b
        | Ast.Mul ->
          fun fr ->
            let b = y fr in
            x fr *. b
        | Ast.Div ->
          fun fr ->
            let b = y fr in
            x fr /. b
        | _ -> assert false
      in
      (FF run, arith)
    end
    else begin
      let x = fx_int fa and y = fx_int fb in
      let run =
        match op with
        | Ast.Add ->
          fun fr ->
            let b = y fr in
            x fr + b
        | Ast.Sub ->
          fun fr ->
            let b = y fr in
            x fr - b
        | Ast.Mul ->
          fun fr ->
            let b = y fr in
            x fr * b
        | Ast.Div ->
          let loc = Loc.to_string e.Ast.eloc in
          fun fr ->
            let d = y fr in
            if d = 0 then Mem.fault "integer division by zero at %s" loc
            else x fr / d
        | _ -> assert false
      in
      (FI run, Ast.Int)
    end
  | Ast.Mod ->
    let x = fx_int fa and y = fx_int fb in
    let loc = Loc.to_string e.Ast.eloc in
    ( FI
        (fun fr ->
          let d = y fr in
          if d = 0 then Mem.fault "integer modulo by zero at %s" loc
          else x fr mod d),
      Ast.Int )
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    let run =
      if is_floaty arith && not (is_ptr ta || is_ptr tb) then begin
        (* direct float compares: the modeled [cmp_float ( < )] instantiates
           the polymorphic primitive at float, which compiles to the native
           IEEE compare — identical NaN behaviour *)
        let x = fx_float fa and y = fx_float fb in
        match op with
        | Ast.Lt ->
          fun fr ->
            let b = y fr in
            if x fr < b then 1 else 0
        | Ast.Le ->
          fun fr ->
            let b = y fr in
            if x fr <= b then 1 else 0
        | Ast.Gt ->
          fun fr ->
            let b = y fr in
            if x fr > b then 1 else 0
        | Ast.Ge ->
          fun fr ->
            let b = y fr in
            if x fr >= b then 1 else 0
        | Ast.Eq ->
          fun fr ->
            let b = y fr in
            if x fr = b then 1 else 0
        | Ast.Ne ->
          fun fr ->
            let b = y fr in
            if x fr <> b then 1 else 0
        | _ -> assert false
      end
      else if is_ptr ta || is_ptr tb then begin
        (* pointer comparisons: by synthetic address; null compares as 0 *)
        let va = fx_value fa and vb = fx_value fb in
        let addr v =
          match v with
          | Mem.VPtr p -> Mem.addr_of p
          | Mem.VNull -> 0
          | v -> Mem.to_int v
        in
        let f =
          match op with
          | Ast.Lt -> ( < )
          | Ast.Le -> ( <= )
          | Ast.Gt -> ( > )
          | Ast.Ge -> ( >= )
          | Ast.Eq -> ( = )
          | Ast.Ne -> ( <> )
          | _ -> assert false
        in
        fun fr ->
          let b = addr (vb fr) in
          if f (addr (va fr)) b then 1 else 0
      end
      else begin
        let x = fx_int fa and y = fx_int fb in
        match op with
        | Ast.Lt ->
          fun fr ->
            let b = y fr in
            if x fr < b then 1 else 0
        | Ast.Le ->
          fun fr ->
            let b = y fr in
            if x fr <= b then 1 else 0
        | Ast.Gt ->
          fun fr ->
            let b = y fr in
            if x fr > b then 1 else 0
        | Ast.Ge ->
          fun fr ->
            let b = y fr in
            if x fr >= b then 1 else 0
        | Ast.Eq ->
          fun fr ->
            let b = y fr in
            if x fr = b then 1 else 0
        | Ast.Ne ->
          fun fr ->
            let b = y fr in
            if x fr <> b then 1 else 0
        | _ -> assert false
      end
    in
    (FI run, Ast.Int)
  | Ast.LAnd ->
    let x = fx_bool fa and y = fx_bool fb in
    (FI (fun fr -> if x fr then (if y fr then 1 else 0) else 0), Ast.Int)
  | Ast.LOr ->
    let x = fx_bool fa and y = fx_bool fb in
    (FI (fun fr -> if x fr then 1 else if y fr then 1 else 0), Ast.Int)
  | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
    let x = fx_int fa and y = fx_int fb in
    let run =
      match op with
      | Ast.BAnd ->
        fun fr ->
          let b = y fr in
          x fr land b
      | Ast.BOr ->
        fun fr ->
          let b = y fr in
          x fr lor b
      | Ast.BXor ->
        fun fr ->
          let b = y fr in
          x fr lxor b
      | Ast.Shl ->
        fun fr ->
          let b = y fr in
          x fr lsl b
      | Ast.Shr ->
        fun fr ->
          let b = y fr in
          x fr asr b
      | _ -> assert false
    in
    (FI run, Ast.Int)

(* (root pointer, flat element offset) decomposition of an address
   expression.  Nested subscripts over a {e view} chain (multi-dimensional
   arrays, whose value IS their address) fold into one integer offset, so
   the consuming load/store allocates no intermediate pointer records.  A
   [Ptr]-typed base breaks the chain: its value is a pointer possibly
   loaded from memory (float** rows), so it roots a fresh decomposition —
   the load happens inside the compiled base closure, exactly where the
   modeled [compile_lval] performs it.  The index of each subscript level
   evaluates before its base, matching the modeled right-to-left
   application order. *)
and fast_addr cenv (e : Ast.expr) :
    (frame -> Mem.ptr) * (frame -> int) * Ast.ctype =
  let root, off, elt = fast_addr_opt cenv e in
  (froot_clo root, foff_clo off, elt)

and fast_addr_opt cenv (e : Ast.expr) : froot * foff * Ast.ctype =
  match e.Ast.edesc with
  | Ast.Index (base, idx) ->
    let tbase = resolve cenv (snd (fast_expr_ty cenv base)) in
    let root, off =
      match tbase with
      | Ast.Array _ ->
        (* view: value = address, flat-compose into the same root object
           (recompiling the base costs only compile time) *)
        let r, o, _ = fast_addr_opt cenv base in
        (r, o)
      | _ -> (
        (* a pointer-typed base roots a fresh decomposition: its value is
           loaded here, exactly where the modeled lvalue loads it.  When
           the base is itself a subscript the row pointer is read with the
           fused [get_p] (no intermediate boxing); otherwise the base
           compiles as an ordinary pointer rvalue. *)
        match base.Ast.edesc with
        | Ast.Index _ ->
          let br, bo, _ = fast_addr_opt cenv base in
          (RClo (fused_get_p br bo), KConst 0)
        | _ -> (fast_root cenv base, KConst 0))
    in
    let elt, stride, is_view = subscript_info cenv tbase in
    let st = if is_view then stride else 1 in
    let cls =
      match idx.Ast.edesc with
      | Ast.IntLit n -> `Const n
      | Ast.Ident nm -> (
        match lookup_local cenv nm with
        | Some (s, _) -> `Slot s
        | None -> `Clo (fx_int (fst (fast_expr cenv idx))))
      | _ -> `Clo (fx_int (fst (fast_expr cenv idx)))
    in
    (root, foff_compose off cls st, elt)
  | Ast.Cast (_, inner) -> fast_addr_opt cenv inner
  | _ ->
    let ty = resolve cenv (snd (fast_expr_ty cenv e)) in
    (fast_root cenv e, KConst 0, ty)

(* pointer-valued base as a root descriptor: a global array view is a
   compile-time constant; anything else converts its rvalue *)
and fast_root cenv (e : Ast.expr) : froot =
  match e.Ast.edesc with
  | Ast.Ident name when lookup_local cenv name = None -> (
    match Hashtbl.find_opt cenv.globals name with
    | Some (GArray { view }, _) -> RConst view
    | _ -> RClo (fx_ptr (fst (fast_expr cenv e))))
  | _ -> RClo (fx_ptr (fst (fast_expr cenv e)))

(* static type of an expression under the fast compiler, without emitting
   (or allocating for) its closure — used where [fast_addr_opt] only needs
   the base's type to pick a decomposition *)
and fast_expr_ty cenv (e : Ast.expr) : unit * Ast.ctype =
  match e.Ast.edesc with
  | Ast.Ident name -> (
    match lookup_local cenv name with
    | Some (_, ty) -> ((), ty)
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (_, ty) -> ((), ty)
      | None -> unsupported "unbound identifier %s" name))
  | Ast.Index (base, _) ->
    let tbase = resolve cenv (snd (fast_expr_ty cenv base)) in
    let elt, _, _ = subscript_info cenv tbase in
    ((), elt)
  | Ast.Cast (ty, _) -> ((), resolve cenv ty)
  | _ -> ((), snd (fast_expr cenv e))

and fast_lval cenv (e : Ast.expr) : flv =
  match e.Ast.edesc with
  | Ast.Ident name -> (
    match lookup_local cenv name with
    | Some (slot, ty) -> FLSlot (slot, ty)
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (GScalar { cell; _ }, ty) -> FLGlobal (cell, ty)
      | Some (GArray { view }, ty) -> FLMem ((fun _ -> view), (fun _ -> 0), ty)
      | None -> unsupported "unbound identifier %s" name))
  | Ast.Index _ ->
    let root, off, elt = fast_addr cenv e in
    FLMem (root, off, elt)
  | Ast.Deref inner ->
    let fi, ti = fast_expr cenv inner in
    let elt, _, _ = subscript_info cenv (resolve cenv ti) in
    FLMem (fx_ptr fi, (fun _ -> 0), elt)
  | Ast.Cast (_, inner) -> fast_lval cenv inner
  | _ -> unsupported "unsupported lvalue: %s" (Ast_printer.expr_to_string e)

and fast_assign cenv op lhs rhs : fx * Ast.ctype =
  let lv = fast_lval cenv lhs in
  let ty = resolve cenv (flv_type lv) in
  let frhs, _trhs = fast_expr cenv rhs in
  let run =
    match lv with
    | FLSlot (slot, _) -> fast_assign_slot ty op slot frhs
    | FLGlobal (cell, _) -> fast_assign_global ty op cell frhs
    | FLMem (root, off, _) -> fast_assign_mem ty op root off frhs
  in
  (run, ty)

and fast_incdec cenv pre inc arg : fx * Ast.ctype =
  let lv = fast_lval cenv arg in
  let ty = resolve cenv (flv_type lv) in
  let delta = if inc then 1 else -1 in
  let fdelta = float_of_int delta in
  (* boxed-seam fallback, mirroring the modeled [apply] *)
  let apply old =
    match (ty, old) with
    | (Ast.Float | Ast.Double), v -> Mem.VFloat (Mem.to_float v +. fdelta)
    | Ast.Ptr _, Mem.VPtr p -> Mem.VPtr (Mem.ptr_add p delta)
    | _, v -> Mem.VInt (Mem.to_int v + delta)
  in
  let run =
    match lv with
    | FLSlot (slot, _) -> (
      match ty with
      | Ast.Int | Ast.Char ->
        FI
          (fun fr ->
            let o = Mem.to_int fr.(slot) in
            let nv = o + delta in
            fr.(slot) <- Mem.VInt nv;
            if pre then nv else o)
      | Ast.Float | Ast.Double ->
        FF
          (fun fr ->
            let o = Mem.to_float fr.(slot) in
            let nv = o +. fdelta in
            fr.(slot) <- Mem.VFloat nv;
            if pre then nv else o)
      | _ ->
        FV
          (fun fr ->
            let old = fr.(slot) in
            let nv = apply old in
            fr.(slot) <- nv;
            if pre then nv else old))
    | FLGlobal (cell, _) -> (
      match ty with
      | Ast.Int | Ast.Char ->
        FI
          (fun _ ->
            let o = Mem.to_int !cell in
            let nv = o + delta in
            cell := Mem.VInt nv;
            if pre then nv else o)
      | Ast.Float | Ast.Double ->
        FF
          (fun _ ->
            let o = Mem.to_float !cell in
            let nv = o +. fdelta in
            cell := Mem.VFloat nv;
            if pre then nv else o)
      | _ ->
        FV
          (fun _ ->
            let old = !cell in
            let nv = apply old in
            cell := nv;
            if pre then nv else old))
    | FLMem (root, off, _) -> (
      match ty with
      | Ast.Int | Ast.Char ->
        FI
          (fun fr ->
            let k = off fr in
            let p = root fr in
            let o = Mem.get_i p k in
            let nv = o + delta in
            Mem.set_i p k nv;
            if pre then nv else o)
      | Ast.Float | Ast.Double ->
        FF
          (fun fr ->
            let k = off fr in
            let p = root fr in
            let o = Mem.get_f p k in
            let nv = o +. fdelta in
            Mem.set_f p k nv;
            if pre then nv else o)
      | _ ->
        FV
          (fun fr ->
            let k = off fr in
            let p = root fr in
            let old = Mem.peek_at p k in
            let nv = apply old in
            Mem.poke_at p k nv;
            if pre then nv else old))
  in
  (run, ty)

and fast_call cenv loc fname args : fx * Ast.ctype =
  let rt = cenv.rt in
  match fname with
  | "malloc" | "calloc" ->
    (* uncast allocation: treat as bytes of doubles *)
    let run, ty = compile_malloc cenv fname Ast.Double args in
    (FV run, ty)
  | "free" ->
    let fargs = List.map (fun a -> fx_unit (fst (fast_expr cenv a))) args in
    ( FV
        (fun fr ->
          List.iter (fun f -> f fr) fargs;
          Mem.VNull),
      Ast.Void )
  | "printf" -> (
    match args with
    | fmt_e :: rest ->
      let frest = List.map (fun a -> fx_value (fst (fast_expr cenv a))) rest in
      let ffmt = fx_value (fst (fast_expr cenv fmt_e)) in
      ( FI
          (fun fr ->
            let fmt =
              match ffmt fr with
              | Mem.VPtr p -> decode_c_string p
              | v -> string_of_value v
            in
            run_printf (cur rt).ds_out fmt (List.map (fun f -> f fr) frest);
            0),
        Ast.Int )
    | [] -> unsupported "printf with no arguments")
  | "exit" ->
    let fargs = List.map (fun a -> fx_int (fst (fast_expr cenv a))) args in
    ( FV
        (fun fr ->
          let code = match fargs with f :: _ -> f fr | [] -> 0 in
          raise (Return_v (Mem.VInt code))),
      Ast.Void )
  | "__max" | "__min" -> (
    match List.map (fun a -> fast_expr cenv a) args with
    | [ (fa, _); (fb, _) ] ->
      let x = fx_int fa and y = fx_int fb in
      let pick_max = fname = "__max" in
      ( FI
          (fun fr ->
            let a = x fr in
            let b = y fr in
            if pick_max then max a b else min a b),
        Ast.Int )
    | _ -> unsupported "%s expects two arguments" fname)
  | "__ceild" | "__floord" -> (
    match List.map (fun a -> fast_expr cenv a) args with
    | [ (fa, _); (fb, _) ] ->
      let x = fx_int fa and y = fx_int fb in
      let ceil_mode = fname = "__ceild" in
      ( FI
          (fun fr ->
            let a = x fr in
            let b = y fr in
            if b = 0 then Mem.fault "division by zero in %s" fname
            else if ceil_mode then ceild a b
            else floord a b),
        Ast.Int )
    | _ -> unsupported "%s expects two arguments" fname)
  | "abs" -> (
    match List.map (fun a -> fx_int (fst (fast_expr cenv a))) args with
    | [ fa ] -> (FI (fun fr -> abs (fa fr)), Ast.Int)
    | _ -> unsupported "abs expects one argument")
  | _ -> (
    match List.find_opt (fun (n, _, _) -> n = fname) builtin_math with
    | Some (_, f, _weight) -> (
      match List.map (fun a -> fx_float (fst (fast_expr cenv a))) args with
      | [ fa ] ->
        let single = String.length fname > 0 && fname.[String.length fname - 1] = 'f' in
        (FF (fun fr -> f (fa fr)), if single then Ast.Float else Ast.Double)
      | _ -> unsupported "%s expects one argument" fname)
    | None -> (
      match List.find_opt (fun (n, _, _) -> n = fname) builtin_math2 with
      | Some (_, f, _weight) -> (
        match List.map (fun a -> fx_float (fst (fast_expr cenv a))) args with
        | [ fa; fb ] ->
          ( FF
              (fun fr ->
                let b = fb fr in
                let a = fa fr in
                f a b),
            Ast.Double )
        | _ -> unsupported "%s expects two arguments" fname)
      | None -> (
        (* user function: frames are the boxed seam, so argument values box
           here exactly like the modeled engine *)
        match Hashtbl.find_opt cenv.funcs fname with
        | Some entry -> (
          let cargs = List.map (fun a -> fast_expr cenv a) args in
          match fast_leaf_call cenv entry cargs with
          | Some fx -> (fx, resolve cenv entry.fe_def.Ast.f_ret)
          | None ->
            let fargs = Array.of_list (List.map (fun (f, _) -> fx_value f) cargs) in
            let n = Array.length fargs in
            let nparams = List.length entry.fe_def.Ast.f_params in
            let m = if n < nparams then n else nparams in
            ( FV
                (fun fr ->
                  match entry.fe_fast with
                  | Some run ->
                    (* build the callee frame directly: argument values land
                       in the parameter prefix (surplus arguments are still
                       evaluated, in order, like the modeled argv loop) *)
                    let fr' = Array.make entry.fe_nslots Mem.VNull in
                    for i = 0 to m - 1 do
                      fr'.(i) <- fargs.(i) fr
                    done;
                    for i = m to n - 1 do
                      ignore (fargs.(i) fr)
                    done;
                    run fr'
                  | None -> Mem.fault "call to undefined function %s" fname),
              resolve cenv entry.fe_def.Ast.f_ret ))
        | None ->
          unsupported "call to unknown function %s at %s" fname (Loc.to_string loc))))

(* ------------------------------------------------------------------ *)
(* Auto-vectorization eligibility (ICC model)

   A loop is considered auto-vectorizable when it is innermost, its body is
   straight-line arithmetic over array elements (no branches, no stores
   through unanalyzable lvalues), its bounds contain no __min/__max/__ceild
   helper calls (complex PluTo-generated bounds inhibit the vectorizer), and
   any user calls target leaf functions whose body is a single return of
   call-free arithmetic (which the backend trivially inlines, e.g. [mult] in
   the paper's dot product). *)

(* a callee the vectorizer handles after inlining: single return of
   call-free, memory-free arithmetic (scalar params only); functions that
   read arrays (like the heat stencil) leave strided/unaligned accesses the
   vectorizer does not profit from (paper Â§4.3.2) *)
let is_vectorizable_leaf (funcs : (string, func_entry) Hashtbl.t) name =
  match Hashtbl.find_opt funcs name with
  | Some { fe_def = { f_body = Some [ { Ast.sdesc = Ast.SReturn (Some e); _ } ]; _ }; _ }
    ->
    Ast.calls_in_expr e = []
    && not
         (Ast.fold_expr
            (fun acc x ->
              acc
              || match x.Ast.edesc with Ast.Index _ | Ast.Deref _ -> true | _ -> false)
            false e)
  | _ -> false

(* indirect addressing (a gather like x[cols[k]]) defeats vectorization on
   the modeled hardware *)
let expr_has_gather (e : Ast.expr) =
  Ast.fold_expr
    (fun acc x ->
      acc
      ||
      match x.Ast.edesc with
      | Ast.Index (_, idx) ->
        Ast.fold_expr
          (fun a y ->
            a || match y.Ast.edesc with Ast.Index _ | Ast.Deref _ -> true | _ -> false)
          false idx
      | _ -> false)
    false e

let rec stmt_has_control (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.SIf _ | Ast.SWhile _ | Ast.SDoWhile _ | Ast.SFor _ | Ast.SBreak | Ast.SContinue ->
    true
  | Ast.SBlock ss -> List.exists stmt_has_control ss
  | Ast.SExpr _ | Ast.SDecl _ | Ast.SReturn _ | Ast.SPragma _ -> false

let expr_has_cond (e : Ast.expr) =
  Ast.fold_expr
    (fun acc e ->
      acc
      || match e.Ast.edesc with Ast.Cond _ | Ast.Binop ((Ast.LAnd | Ast.LOr), _, _) -> true | _ -> false)
    false e

let bounds_simple cond =
  match cond with
  | None -> true
  | Some e ->
    not
      (List.exists
         (fun f -> List.mem f [ "__min"; "__max"; "__ceild"; "__floord" ])
         (Ast.calls_in_expr e))

let autovec_eligible funcs (init : Ast.for_init option) cond (body : Ast.stmt) =
  let body_stmts = match body.Ast.sdesc with Ast.SBlock ss -> ss | _ -> [ body ] in
  ignore init;
  bounds_simple cond
  && (not (stmt_has_control body))
  && List.for_all
       (fun st ->
         match st.Ast.sdesc with
         | Ast.SExpr e ->
           (not (expr_has_cond e))
           && (not (expr_has_gather e))
           && List.for_all
                (fun f ->
                  is_vectorizable_leaf funcs f
                  || List.exists (fun (n, _, _) -> n = f) builtin_math
                  || List.exists (fun (n, _, _) -> n = f) builtin_math2)
                (Ast.calls_in_expr e)
         | Ast.SPragma _ -> true
         | _ -> false)
       body_stmts

(* ------------------------------------------------------------------ *)
(* Statement compilation *)

type stmt_code = frame -> unit

let nop_stmt : stmt_code = fun _ -> ()

(* ------------------------------------------------------------------ *)
(* Loop-bound hoisting: an optimizing backend evaluates a loop-invariant
   bound expression once, not per iteration.  A bound like
   [__min(ub, t1t + 31)] is invariant when none of its variables is
   assigned in the loop body or step and it calls only the pure bound
   helpers. *)

let idents_of_expr e =
  Ast.fold_expr
    (fun acc x -> match x.Ast.edesc with Ast.Ident n -> n :: acc | _ -> acc)
    [] e

let bound_helpers = [ "__min"; "__max"; "__ceild"; "__floord" ]

let mutated_in_stmt s =
  Ast.fold_stmt
    ~stmt:(fun acc _ -> acc)
    ~expr:(fun acc e ->
      match e.Ast.edesc with
      | Ast.Assign (_, { edesc = Ast.Ident n; _ }, _) -> n :: acc
      | Ast.IncDec { arg = { edesc = Ast.Ident n; _ }; _ } -> n :: acc
      | _ -> acc)
    [] s

let mutated_in_expr e =
  Ast.fold_expr
    (fun acc x ->
      match x.Ast.edesc with
      | Ast.Assign (_, { edesc = Ast.Ident n; _ }, _) -> n :: acc
      | Ast.IncDec { arg = { edesc = Ast.Ident n; _ }; _ } -> n :: acc
      | _ -> acc)
    [] e

(* [Some (iter_expr, bound_expr, strict)] when the condition is
   [iter < bound] / [iter <= bound] with a bound invariant in the loop. *)
let hoistable_bound cond step body =
  match cond with
  | Some { Ast.edesc = Ast.Binop ((Ast.Lt | Ast.Le) as op, lhs, bound); _ } ->
    let mutated =
      mutated_in_stmt body
      @ (match step with Some e -> mutated_in_expr e | None -> [])
      @ idents_of_expr lhs
    in
    let invariant =
      List.for_all (fun v -> not (List.mem v mutated)) (idents_of_expr bound)
      && List.for_all (fun f -> List.mem f bound_helpers) (Ast.calls_in_expr bound)
    in
    if invariant then Some (lhs, bound, op = Ast.Lt) else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parallel dispatch of [#pragma omp parallel for] over the domain pool.

   The dispatcher handles exactly the canonical worksharing shape OpenMP
   requires (and the shape PluTo emits): one int induction variable in a
   local slot, initialized by the loop init; an invariant, side-effect-free
   upper bound [i < b] / [i <= b]; a constant positive stride
   [i++ / i += c / i = i + c]; and a body that cannot escape the loop (no
   return, no [exit] — even transitively through calls — and no break
   binding to the omp loop) nor mutate enclosing-scope register variables
   (each chunk runs on a private copy of the frame, OpenMP's privatization;
   a mutation of a shared register scalar could not be merged back).  Loops
   outside this shape fall back to the sequential recording path, which is
   always semantically safe. *)

(** Recognized [reduction(op:...)] operators. *)
type red_op = Rplus | Rtimes | Rmax

(** One classified accumulator of a [reduction(...)] clause: a local scalar
    slot whose every use in the body is an [op]-shaped update.  Chunks run
    it on identity-initialized private copies; the join folds the partials
    back in ascending chunk order (see [exec_parallel]). *)
type omp_red = {
  rd_slot : int;  (** frame slot of the accumulator *)
  rd_op : red_op;
  rd_floaty : bool;  (** float/double vs int/char arithmetic *)
}

type omp_canon = {
  oc_slot : int;  (** frame slot of the induction variable *)
  oc_bound : frame -> Mem.value;  (** the invariant bound, compiled *)
  oc_strict : bool;  (** [<] vs [<=] *)
  oc_stride : int;  (** positive *)
  oc_reds : omp_red list;  (** classified reduction accumulators *)
}

let red_op_of_string = function
  | "+" -> Some Rplus
  | "*" -> Some Rtimes
  | "max" -> Some Rmax
  | _ -> None

let red_identity rd =
  match (rd.rd_op, rd.rd_floaty) with
  | Rplus, true -> Mem.VFloat 0.0
  | Rplus, false -> Mem.VInt 0
  | Rtimes, true -> Mem.VFloat 1.0
  | Rtimes, false -> Mem.VInt 1
  | Rmax, true -> Mem.VFloat neg_infinity
  | Rmax, false -> Mem.VInt min_int

let red_combine rd a b =
  if rd.rd_floaty then
    let x = Mem.to_float a and y = Mem.to_float b in
    Mem.VFloat
      (match rd.rd_op with
      | Rplus -> x +. y
      | Rtimes -> x *. y
      | Rmax -> Float.max x y)
  else
    let x = Mem.to_int a and y = Mem.to_int b in
    Mem.VInt
      (match rd.rd_op with Rplus -> x + y | Rtimes -> x * y | Rmax -> max x y)

(* Does the accumulator [name] appear anywhere in [e]? *)
let expr_uses name e =
  Ast.fold_expr
    (fun acc x ->
      acc || match x.Ast.edesc with Ast.Ident n -> n = name | _ -> false)
    false e

(* An [op]-shaped whole-statement update of [name]:
   [s += e] / [s = s + e] / [s = e + s] for [+] (and the [*] analogues),
   [s = fmax(s, e)] / [s = __max(s, e)] (either argument order) for [max] —
   with [name] appearing nowhere inside [e], so identity-seeded private
   partials compose exactly. *)
let red_update_ok name op (e : Ast.expr) =
  let is_acc x = match x.Ast.edesc with Ast.Ident n -> n = name | _ -> false in
  let one_side a b = (is_acc a && not (expr_uses name b)) || (is_acc b && not (expr_uses name a)) in
  match (e.Ast.edesc, op) with
  | Ast.Assign (Ast.OpAddAssign, l, r), Rplus -> is_acc l && not (expr_uses name r)
  | Ast.Assign (Ast.OpMulAssign, l, r), Rtimes -> is_acc l && not (expr_uses name r)
  | Ast.Assign (Ast.OpAssign, l, { Ast.edesc = Ast.Binop (Ast.Add, a, b); _ }), Rplus ->
    is_acc l && one_side a b
  | Ast.Assign (Ast.OpAssign, l, { Ast.edesc = Ast.Binop (Ast.Mul, a, b); _ }), Rtimes ->
    is_acc l && one_side a b
  | Ast.Assign (Ast.OpAssign, l, { Ast.edesc = Ast.Call (("fmax" | "__max"), [ a; b ]); _ }), Rmax ->
    is_acc l && one_side a b
  | _ -> false

(* Every occurrence of the accumulator in the loop body must be inside a
   valid update statement (a conditional update is fine — skipped updates
   contribute the identity); any other read or write of it, or a shadowing
   redeclaration, disqualifies the clause: a privatized partial would then
   be observable mid-loop and the merged result could differ from the
   sequential left fold. *)
let rec red_body_ok name op (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.SExpr e -> red_update_ok name op e || not (expr_uses name e)
  | Ast.SBlock ss -> List.for_all (red_body_ok name op) ss
  | Ast.SIf (c, a, b) ->
    (not (expr_uses name c))
    && red_body_ok name op a
    && (match b with Some b -> red_body_ok name op b | None -> true)
  | Ast.SFor (init, c, st, b) ->
    (match init with
    | Some (Ast.FInitExpr e) -> not (expr_uses name e)
    | Some (Ast.FInitDecl { Ast.d_name; d_init; _ }) ->
      d_name <> name
      && (match d_init with Some e -> not (expr_uses name e) | None -> true)
    | None -> true)
    && (match c with Some e -> not (expr_uses name e) | None -> true)
    && (match st with Some e -> not (expr_uses name e) | None -> true)
    && red_body_ok name op b
  | Ast.SWhile (c, b) | Ast.SDoWhile (b, c) ->
    (not (expr_uses name c)) && red_body_ok name op b
  | Ast.SDecl { Ast.d_name; d_init; _ } ->
    d_name <> name
    && (match d_init with Some e -> not (expr_uses name e) | None -> true)
  | Ast.SReturn (Some e) -> not (expr_uses name e)
  | Ast.SPragma _ | Ast.SReturn None | Ast.SBreak | Ast.SContinue -> true

let stmt_has_return s =
  Ast.fold_stmt
    ~stmt:(fun acc s ->
      acc || match s.Ast.sdesc with Ast.SReturn _ -> true | _ -> false)
    ~expr:(fun acc _ -> acc)
    false s

(* a break that would bind to the omp loop itself (breaks inside nested
   loops bind to those loops and are fine) *)
let rec stmt_has_toplevel_break s =
  match s.Ast.sdesc with
  | Ast.SBreak -> true
  | Ast.SBlock ss -> List.exists stmt_has_toplevel_break ss
  | Ast.SIf (_, a, b) ->
    stmt_has_toplevel_break a
    || (match b with Some b -> stmt_has_toplevel_break b | None -> false)
  | _ -> false

(* a continue that would bind to this loop (continues inside nested loops
   bind there); loops whose body has none skip the per-iteration handler
   on the fast path *)
let rec stmt_has_toplevel_continue s =
  match s.Ast.sdesc with
  | Ast.SContinue -> true
  | Ast.SBlock ss -> List.exists stmt_has_toplevel_continue ss
  | Ast.SIf (_, a, b) ->
    stmt_has_toplevel_continue a
    || (match b with Some b -> stmt_has_toplevel_continue b | None -> false)
  | _ -> false

let calls_in_stmt s =
  Ast.fold_stmt
    ~stmt:(fun acc _ -> acc)
    ~expr:(fun acc e ->
      match e.Ast.edesc with Ast.Call (f, _) -> f :: acc | _ -> acc)
    [] s

(* may the body reach exit(), transitively through user calls?  exit unwinds
   the whole program (Return_v past the loop), which a parallel region
   cannot reproduce faithfully. *)
let body_may_exit cenv body =
  let visited = Hashtbl.create 8 in
  let rec go_calls fs =
    List.exists
      (fun f ->
        f = "exit"
        ||
        match Hashtbl.find_opt cenv.funcs f with
        | Some { fe_def = { Ast.f_body = Some ss; _ }; _ }
          when not (Hashtbl.mem visited f) ->
          Hashtbl.replace visited f ();
          List.exists (fun s -> go_calls (calls_in_stmt s)) ss
        | _ -> false)
      fs
  in
  go_calls (calls_in_stmt body)

(* the bound is evaluated once, outside the recorded loop: it must be free
   of memory effects so that one evaluation on the master is equivalent to
   the sequential hoisted evaluation *)
let rec side_effect_free_bound (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.Ident _ -> true
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) ->
    side_effect_free_bound a && side_effect_free_bound b
  | Ast.Unop (Ast.Neg, a) -> side_effect_free_bound a
  | Ast.Call (f, args) when List.mem f bound_helpers ->
    List.for_all side_effect_free_bound args
  | _ -> false

(* One executed chunk of a parallel loop: contiguous iteration indices
   [ck_lo, ck_lo + |ck_iters|), its captured output and its per-iteration
   cost snapshots.  Chunks are disjoint and cover the iteration space, so
   sorting by [ck_lo] recovers exactly the sequential interleaving. *)
type chunk_rec = {
  ck_lo : int;
  ck_out : Buffer.t;
  ck_iters : Cost.t list;
  ck_reds : Mem.value list;
      (** final values of the chunk's identity-seeded private reduction
          accumulators, in [oc_reds] order *)
}

(* the pool-facing rendering of a pragma schedule *)
let par_sched_of : Trace.sched_kind -> Runtime.Par_loop.schedule = function
  | Trace.Static -> Runtime.Par_loop.Static
  | Trace.Static_chunk c -> Runtime.Par_loop.Static_chunk c
  | Trace.Dynamic c -> Runtime.Par_loop.Dynamic c
  | Trace.Guided c -> Runtime.Par_loop.Guided c

(* Deterministic fault selection at the join.  The pool reports whichever
   chunk faulted first in wall-clock order — a race when two chunks fault
   concurrently.  Each job records its first failure with the iteration
   index it belongs to; re-raising the failure earliest in iteration order
   makes the reported fault independent of stealing — provided every chunk
   got to run, which {!run_unstarted} guarantees on the fault path. *)
let earliest_fail (fails : (int * exn) option array) (fallback : exn) =
  let best =
    Array.fold_left
      (fun best f ->
        match (best, f) with
        | Some (bl, _), Some (fl, _) -> if fl < bl then f else best
        | None, f -> f
        | best, None -> best)
      None fails
  in
  match best with Some (_, e) -> e | None -> fallback

(* Early termination discards a cancelled batch's not-yet-started items —
   possibly including the chunk that holds the earliest faulting iteration,
   whose text the sequential interpreter would have reported.  The profile
   and partial output are being discarded anyway once a fault surfaces, so
   the join runs the unstarted jobs inline on the caller (each records its
   own failure into [fails]) before {!earliest_fail} picks the survivor.
   [with_started] wraps each job to note, per position, that it really ran. *)
let with_started (jobs : (int * (int -> unit)) list) =
  let started = Array.make (max 1 (List.length jobs)) false in
  let jobs =
    List.mapi
      (fun i (w, f) ->
        ( w,
          fun sid ->
            started.(i) <- true;
            f sid ))
      jobs
  in
  (started, jobs)

let run_unstarted started (jobs : (int * (int -> unit)) list) =
  List.iteri
    (fun i (_, f) -> if not started.(i) then try f 0 with _ -> ())
    jobs

let exec_parallel rt pool (sched : Trace.sched_kind) (cn : omp_canon)
    (fbody : stmt_code) (finit : stmt_code) (fr : frame) =
  let m = master rt in
  (* fork: close the running sequential segment *)
  rt.segments <- Trace.Seq (Cost.diff m.ds_counters rt.seg_start) :: rt.segments;
  rt.in_parallel <- true;
  (* loop setup runs once on the master stream, like the sequential hoisted
     entry: the init (with any side effects, exactly once) and the invariant
     bound *)
  finit fr;
  let lo = Mem.to_int fr.(cn.oc_slot) in
  let hi_incl =
    let b = Mem.to_int (cn.oc_bound fr) in
    if cn.oc_strict then b - 1 else b
  in
  let stride = cn.oc_stride in
  let n = if hi_incl < lo then 0 else ((hi_incl - lo) / stride) + 1 in
  (* loop-entry branch + final failing comparison, charged to the master as
     in the sequential path *)
  bump_branch rt;
  bump_int rt;
  let workers = min (Runtime.Pool.size pool) (max 1 n) in
  let results : chunk_rec list array = Array.make workers [] in
  let starts = Array.map (fun ds -> Cost.copy ds.ds_counters) rt.states in
  (* execute iteration indices [lo_idx, hi_idx) into a private buffer; the
     per-iteration snapshots mirror the sequential recording loop (body +
     step + back-branch inside the snapshot, comparison outside) *)
  let run_chunk ds recs lo_idx hi_idx =
    let buf = Buffer.create 64 in
    ds.ds_out <- buf;
    let fr' = Array.copy fr in
    (* reduction accumulators start each chunk at the operator identity:
       the chunk computes a pure partial, merged back at the join *)
    List.iter (fun rd -> fr'.(rd.rd_slot) <- red_identity rd) cn.oc_reds;
    let iters = ref [] in
    for k = lo_idx to hi_idx - 1 do
      bump_int rt;
      let snap = Cost.copy ds.ds_counters in
      fr'.(cn.oc_slot) <- Mem.VInt (lo + (k * stride));
      (try fbody fr' with Continue_e -> ());
      bump_int rt;
      bump_branch rt;
      iters := Cost.diff ds.ds_counters snap :: !iters
    done;
    recs :=
      {
        ck_lo = lo_idx;
        ck_out = buf;
        ck_iters = List.rev !iters;
        ck_reds = List.map (fun rd -> fr'.(rd.rd_slot)) cn.oc_reds;
      }
      :: !recs
  in
  let fails : (int * exn) option array = Array.make workers None in
  (* The stealable unit here is one whole plan-worker: instrumentation binds
     interpreter state by PLAN index (state w+1 accrues exactly plan-worker
     w's counters and cache history, wherever the job executes), so the
     per-iteration cost snapshots — and through them the simulated timings —
     are a pure function of (schedule, workers, n), never of who stole
     what.  Seeding job w on deque w keeps the static distribution when
     nothing steals; an idle stream relieves a loaded one of whole jobs. *)
  let jobs =
    match sched with
    | Trace.Static | Trace.Static_chunk _ | Trace.Guided _ ->
      let sched' = par_sched_of sched in
      let chunks = Runtime.Par_loop.chunk_plan sched' ~workers ~lo:0 ~hi:n in
      List.init workers (fun w ->
          ( w,
            fun _sid ->
              let ds = rt.states.(w + 1) in
              Domain.DLS.set rt.dls ds;
              let recs = ref [] in
              List.iter
                (fun (a, b) ->
                  try run_chunk ds recs a b
                  with exn ->
                    fails.(w) <- Some (a, exn);
                    raise exn)
                chunks.(w);
              results.(w) <- List.rev !recs ))
    | Trace.Dynamic chunk ->
      let chunk = max 1 chunk in
      let next = Atomic.make 0 in
      List.init workers (fun w ->
          ( w,
            fun _sid ->
              let ds = rt.states.(w + 1) in
              Domain.DLS.set rt.dls ds;
              let recs = ref [] in
              let rec go () =
                let start = Atomic.fetch_and_add next chunk in
                if start < n then begin
                  (try run_chunk ds recs start (min n (start + chunk))
                   with exn ->
                     fails.(w) <- Some (start, exn);
                     raise exn);
                  go ()
                end
              in
              go ();
              results.(w) <- List.rev !recs ))
  in
  let started, jobs = with_started jobs in
  let finish () =
    Domain.DLS.set rt.dls m;
    rt.in_parallel <- false
  in
  (try Runtime.Pool.run_sharded pool jobs
   with exn ->
     (* a faulting iteration: the pool cancelled the rest of the batch, so
        partial worker output is dropped (the program is failing anyway);
        run the discarded jobs to find the fault earliest in iteration
        order, leave the profile state consistent, and re-raise that
        failure toward run_main *)
     run_unstarted started jobs;
     finish ();
     rt.seg_start <- Cost.copy m.ds_counters;
     raise (earliest_fail fails exn));
  finish ();
  (* join: fold worker counter deltas into the master (fieldwise sums,
     order-independent), then splice chunk outputs and per-iteration costs
     back into sequential order *)
  for s = 1 to Array.length rt.states - 1 do
    Cost.add_into ~into:m.ds_counters (Cost.diff rt.states.(s).ds_counters starts.(s))
  done;
  let chunks =
    List.sort
      (fun a b -> compare a.ck_lo b.ck_lo)
      (List.concat (Array.to_list results))
  in
  List.iter (fun ck -> Buffer.add_buffer m.ds_out ck.ck_out) chunks;
  let iters = Array.of_list (List.concat_map (fun ck -> ck.ck_iters) chunks) in
  (* deterministic reduction merge: fold the chunk partials into the
     master's pre-loop value in ascending ck_lo order.  The chunk intervals
     are a function of (schedule, workers, n) alone — never of execution
     order — so a given jobs level always merges in the same order, and for
     exactly-representable values the result is byte-identical to the
     sequential left fold at every jobs level. *)
  List.iteri
    (fun ri rd ->
      fr.(rd.rd_slot) <-
        List.fold_left
          (fun acc ck -> red_combine rd acc (List.nth ck.ck_reds ri))
          fr.(rd.rd_slot) chunks)
    cn.oc_reds;
  (* the induction variable holds its first non-taken value afterwards *)
  fr.(cn.oc_slot) <- Mem.VInt (lo + (n * stride));
  rt.segments <- Trace.Par { sched; iters } :: rt.segments;
  rt.seg_start <- Cost.copy m.ds_counters

(** [exec_parallel]'s fast twin: identical fork/join mechanics — chunk
    plans, private output buffers spliced in ck_lo order, identity-seeded
    reduction partials merged in ascending chunk order, the final induction
    value — with every counter snapshot and cost merge removed.  Because no
    instrumented state has to follow the plan, the stealable unit shrinks
    from a whole plan-worker to ONE CHUNK: every contiguous run of the plan
    becomes its own pool item, seeded on its plan-worker's deque (so the
    distribution is the static one when nothing steals) but free to execute
    on whichever stream takes it, bound to that stream's scratch state.
    Chunk boundaries still come from the plan and the join still sorts by
    ck_lo, so output bytes and merge order are independent of stealing.
    The profile still gains a [Par] segment (with no per-iteration costs)
    so the parallel-region count a run reports is variant-independent. *)
let exec_parallel_fast rt pool (sched : Trace.sched_kind) (cn : omp_canon)
    (fbody : stmt_code) (finit : stmt_code) (fr : frame) =
  let m = master rt in
  rt.segments <- Trace.Seq (Cost.create ()) :: rt.segments;
  rt.in_parallel <- true;
  finit fr;
  let lo = Mem.to_int fr.(cn.oc_slot) in
  let hi_incl =
    let b = Mem.to_int (cn.oc_bound fr) in
    if cn.oc_strict then b - 1 else b
  in
  let stride = cn.oc_stride in
  let n = if hi_incl < lo then 0 else ((hi_incl - lo) / stride) + 1 in
  let workers = min (Runtime.Pool.size pool) (max 1 n) in
  (* one cell per pool item, written exactly once by its executor *)
  let run_chunk sid cell lo_idx hi_idx =
    let ds = rt.states.(sid + 1) in
    Domain.DLS.set rt.dls ds;
    let saved = ds.ds_out in
    let buf = Buffer.create 64 in
    ds.ds_out <- buf;
    let fr' = Array.copy fr in
    List.iter (fun rd -> fr'.(rd.rd_slot) <- red_identity rd) cn.oc_reds;
    (try
       for k = lo_idx to hi_idx - 1 do
         fr'.(cn.oc_slot) <- Mem.VInt (lo + (k * stride));
         try fbody fr' with Continue_e -> ()
       done
     with exn ->
       ds.ds_out <- saved;
       raise exn);
    ds.ds_out <- saved;
    cell :=
      {
        ck_lo = lo_idx;
        ck_out = buf;
        ck_iters = [];
        ck_reds = List.map (fun rd -> fr'.(rd.rd_slot)) cn.oc_reds;
      }
      :: !cell
  in
  let jobs, cells, fails =
    match sched with
    | Trace.Static | Trace.Static_chunk _ | Trace.Guided _ ->
      let sched' = par_sched_of sched in
      let chunks = Runtime.Par_loop.chunk_plan sched' ~workers ~lo:0 ~hi:n in
      let flat =
        List.concat
          (Array.to_list
             (Array.mapi (fun w runs -> List.map (fun c -> (w, c)) runs) chunks))
      in
      let cells = Array.init (List.length flat) (fun _ -> ref []) in
      let fails = Array.make (max 1 (List.length flat)) None in
      ( List.mapi
          (fun ci (w, (a, b)) ->
            ( w,
              fun sid ->
                try run_chunk sid cells.(ci) a b
                with exn ->
                  fails.(ci) <- Some (a, exn);
                  raise exn ))
          flat,
        cells,
        fails )
    | Trace.Dynamic chunk ->
      let chunk = max 1 chunk in
      let next = Atomic.make 0 in
      let cells = Array.init workers (fun _ -> ref []) in
      let fails = Array.make workers None in
      ( List.init workers (fun w ->
            ( w,
              fun sid ->
                let rec go () =
                  let start = Atomic.fetch_and_add next chunk in
                  if start < n then begin
                    (try run_chunk sid cells.(w) start (min n (start + chunk))
                     with exn ->
                       fails.(w) <- Some (start, exn);
                       raise exn);
                    go ()
                  end
                in
                go () )),
        cells,
        fails )
  in
  let started, jobs = with_started jobs in
  let finish () =
    Domain.DLS.set rt.dls m;
    rt.in_parallel <- false
  in
  (try Runtime.Pool.run_sharded pool jobs
   with exn ->
     run_unstarted started jobs;
     finish ();
     raise (earliest_fail fails exn));
  finish ();
  let chunks =
    List.sort
      (fun a b -> compare a.ck_lo b.ck_lo)
      (List.concat (Array.to_list (Array.map (fun c -> !c) cells)))
  in
  List.iter (fun ck -> Buffer.add_buffer m.ds_out ck.ck_out) chunks;
  List.iteri
    (fun ri rd ->
      fr.(rd.rd_slot) <-
        List.fold_left
          (fun acc ck -> red_combine rd acc (List.nth ck.ck_reds ri))
          fr.(rd.rd_slot) chunks)
    cn.oc_reds;
  fr.(cn.oc_slot) <- Mem.VInt (lo + (n * stride));
  rt.segments <- Trace.Par { sched; iters = [||] } :: rt.segments

(** A nested [parallel for] reached from inside a dispatched (modeled)
    chunk: a yield-sliced sequential chain through the pool's deques.  The
    enclosing chunk's instrumented state — cost counters, cache history,
    and the per-iteration snapshots being taken around it — must evolve on
    that one state in program order, so the links execute one at a time on
    it; but between links the rest of the loop sits exposed at the bottom
    of the executor's deque, where an idle stream can relieve a loaded one
    of it (the chain migrates to whoever steals it).  Costs are charged
    exactly as the sequential nested branch charges them: the entry branch
    once, then per iteration condition + body + step + back-branch, and
    finally the failing condition — so output bytes, counters and faults
    are byte-identical to the inline execution at every pool size. *)
let exec_parallel_nested rt pool ~(fentry : stmt_code) ~(fcond : frame -> bool)
    ~(fstep : stmt_code) ~(grain : int) (fbody : stmt_code)
    (finit : stmt_code) (fr : frame) =
  let ds = cur rt in
  finit fr;
  fentry fr;
  bump_branch rt;
  let stop = ref false in
  let step _sid =
    (* a stolen link continues on the ENCLOSING chunk's state, not the
       thief's scratch state: the migration moves execution, never the
       instrumentation *)
    Domain.DLS.set rt.dls ds;
    let budget = ref grain in
    while !budget > 0 && not !stop do
      if fcond fr then begin
        (try fbody fr with Continue_e -> ());
        fstep fr;
        bump_branch rt;
        decr budget
      end
      else stop := true
    done;
    not !stop
  in
  (try Runtime.Pool.run_chain pool step with Break_e -> ());
  Domain.DLS.set rt.dls ds

(** A nested [parallel for] reached from inside a dispatched (fast) chunk:
    genuinely parallel sub-chunks through {!Runtime.Pool.run_nested}.  The
    sub-chunks of the nested plan are pushed onto the executing stream's
    own deque (the owner pops them LIFO; idle streams steal FIFO), each
    runs on its executor's scratch state with a private output buffer and
    identity-seeded reduction partials, and the join splices both back into
    the enclosing chunk in ascending ck_lo order — so the enclosing chunk's
    bytes are independent of who stole what. *)
let exec_parallel_nested_fast rt pool (sched : Trace.sched_kind)
    (cn : omp_canon) (fbody : stmt_code) (finit : stmt_code) (fr : frame) =
  let ds0 = cur rt in
  finit fr;
  let lo = Mem.to_int fr.(cn.oc_slot) in
  let hi_incl =
    let b = Mem.to_int (cn.oc_bound fr) in
    if cn.oc_strict then b - 1 else b
  in
  let stride = cn.oc_stride in
  let n = if hi_incl < lo then 0 else ((hi_incl - lo) / stride) + 1 in
  if n > 0 then begin
    let workers = min (Runtime.Pool.size pool) n in
    let subs =
      Array.of_list
        (List.sort compare
           (List.concat
              (Array.to_list
                 (Runtime.Par_loop.chunk_plan (par_sched_of sched) ~workers
                    ~lo:0 ~hi:n))))
    in
    let cells : chunk_rec option array = Array.make (Array.length subs) None in
    let run_sub ci a b sid =
      let ds = rt.states.(sid + 1) in
      Domain.DLS.set rt.dls ds;
      let saved = ds.ds_out in
      let buf = Buffer.create 64 in
      ds.ds_out <- buf;
      let fr' = Array.copy fr in
      List.iter (fun rd -> fr'.(rd.rd_slot) <- red_identity rd) cn.oc_reds;
      (try
         for k = a to b - 1 do
           fr'.(cn.oc_slot) <- Mem.VInt (lo + (k * stride));
           try fbody fr' with Continue_e -> ()
         done
       with exn ->
         ds.ds_out <- saved;
         raise exn);
      ds.ds_out <- saved;
      cells.(ci) <-
        Some
          {
            ck_lo = a;
            ck_out = buf;
            ck_iters = [];
            ck_reds = List.map (fun rd -> fr'.(rd.rd_slot)) cn.oc_reds;
          }
    in
    (try
       Runtime.Pool.run_nested pool
         (List.mapi
            (fun ci (a, b) -> fun sid -> run_sub ci a b sid)
            (Array.to_list subs))
     with exn ->
       Domain.DLS.set rt.dls ds0;
       raise exn);
    Domain.DLS.set rt.dls ds0;
    let recs =
      List.sort
        (fun a b -> compare a.ck_lo b.ck_lo)
        (List.filter_map Fun.id (Array.to_list cells))
    in
    List.iter (fun ck -> Buffer.add_buffer ds0.ds_out ck.ck_out) recs;
    List.iteri
      (fun ri rd ->
        fr.(rd.rd_slot) <-
          List.fold_left
            (fun acc ck -> red_combine rd acc (List.nth ck.ck_reds ri))
            fr.(rd.rd_slot) recs)
      cn.oc_reds
  end;
  fr.(cn.oc_slot) <- Mem.VInt (lo + (n * stride))

(* ------------------------------------------------------------------ *)
(* The inspector of the inspector/executor path.  A pragma carrying an
   [[inspector:…]] marker (emitted by the gather path of [Pluto]) names
   the {e checked} arrays: the static analysis proved every OTHER access
   parallel, so the loop may dispatch iff the checked arrays' footprints
   are pairwise disjoint across iterations.  At compile time every access
   to a checked array in the body is turned into an uninstrumented address
   evaluator (the fast path's fused (root, offset) descriptors — no cost
   counters, no cache traffic, no access logging, identical across the
   three variants); at run time the probe sweeps the iteration space on a
   scratch frame, hashing each address to its last touching iteration.  A
   cross-iteration write/write or write/read collision — or any shape the
   probe cannot compile or evaluate (an index expression reading state the
   body mutates, an out-of-range index) — is a CONFLICT, and the loop runs
   on the byte-identical sequential path instead, which also reproduces
   any fault exactly where the uninspected run would have raised it. *)

exception Probe_unsupported

(* names declared anywhere inside the body: a probe index expression must
   not read them (their slots are dead on the probe's scratch frame) *)
let rec probe_locals acc (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.SDecl d -> d.Ast.d_name :: acc
  | Ast.SBlock ss -> List.fold_left probe_locals acc ss
  | Ast.SIf (_, t, e) -> (
    let acc = probe_locals acc t in
    match e with None -> acc | Some e -> probe_locals acc e)
  | Ast.SWhile (_, b) | Ast.SDoWhile (b, _) -> probe_locals acc b
  | Ast.SFor (i, _, _, b) ->
    let acc =
      match i with Some (Ast.FInitDecl d) -> d.Ast.d_name :: acc | _ -> acc
    in
    probe_locals acc b
  | _ -> acc

(* Only expressions whose every identifier is stable across the loop body
   (not assigned, not declared inside it — the induction variable is
   excluded by the caller, the probe sets it per iteration) may feed an
   address evaluator; anything else makes the footprint unknowable at
   probe time. *)
let rec probe_expr_ok ~unstable (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.IntLit _ -> true
  | Ast.Ident n -> not (List.mem n unstable)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul), a, b) ->
    probe_expr_ok ~unstable a && probe_expr_ok ~unstable b
  | Ast.Unop (Ast.Neg, a) | Ast.Cast (_, a) -> probe_expr_ok ~unstable a
  | Ast.Index (b, i) -> probe_expr_ok ~unstable b && probe_expr_ok ~unstable i
  | _ -> false

type insp_probe = {
  ip_writes : (frame -> int) array;  (** checked-array write addresses *)
  ip_reads : (frame -> int) array;  (** checked-array read addresses *)
}

(* base array name of an access expression, [None] for non-index shapes *)
let rec probe_base_name (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Ident n -> Some n
  | Ast.Index (b, _) -> probe_base_name b
  | Ast.Cast (_, b) -> probe_base_name b
  | _ -> None

(* Collect every access to a checked array in the loop body and compile it
   to a byte-address evaluator over the fused (root, offset) descriptors.
   Raises [Probe_unsupported] (or the fast compiler's [Unsupported]) on any
   shape whose footprint cannot be known before the loop runs — the caller
   maps that to a conservative conflict verdict. *)
let probe_of_body cenv ~checked ~unstable body : insp_probe =
  let writes = ref [] and reads = ref [] in
  let addr_of e =
    if not (probe_expr_ok ~unstable e) then raise Probe_unsupported;
    let root, off, _ = fast_addr cenv e in
    fun fr -> Mem.addr_of (Mem.at (root fr) (off fr))
  in
  let record ~write e =
    match probe_base_name e with
    | Some b when List.mem b checked ->
      let a = addr_of e in
      if write then writes := a :: !writes else reads := a :: !reads
    | _ -> ()
  in
  let rec expr ?(store = false) (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _
    | Ast.SizeofType _ | Ast.SizeofExpr _ | Ast.Ident _ ->
      ()
    | Ast.Index (b, i) ->
      record ~write:store e;
      subs b;
      expr i
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | Ast.Unop (_, a) | Ast.Cast (_, a) -> expr a
    | Ast.Cond (c, t, f) ->
      expr c;
      expr t;
      expr f
    | Ast.Assign (_, lhs, rhs) ->
      (* a compound assignment's implicit read shares the write's address:
         the write entry alone covers both collision directions *)
      expr ~store:true lhs;
      expr rhs
    | Ast.IncDec { arg; _ } -> expr ~store:true arg
    | Ast.Comma (a, b) ->
      expr a;
      expr b
    | Ast.Call _ ->
      (* an opaque callee could touch a checked array unprobed *)
      raise Probe_unsupported
    | Ast.Deref _ | Ast.Member _ | Ast.Arrow _ | Ast.AddrOf _ ->
      raise Probe_unsupported
  and subs (b : Ast.expr) =
    (* subscript-chain bases: only the inner index expressions are reads *)
    match b.Ast.edesc with
    | Ast.Ident _ -> ()
    | Ast.Index (b', i) ->
      record ~write:false b;
      subs b';
      expr i
    | Ast.Cast (_, b') -> subs b'
    | _ -> raise Probe_unsupported
  in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Ast.SExpr e -> expr e
    | Ast.SBlock ss -> List.iter stmt ss
    | Ast.SIf (c, t, e) ->
      expr c;
      stmt t;
      Option.iter stmt e
    | Ast.SDecl d -> Option.iter (fun e -> expr e) d.Ast.d_init
    | Ast.SFor (i, c, st, b) ->
      (match i with
      | Some (Ast.FInitExpr e) -> expr e
      | Some (Ast.FInitDecl d) -> Option.iter (fun e -> expr e) d.Ast.d_init
      | None -> ());
      Option.iter (fun e -> expr e) c;
      Option.iter (fun e -> expr e) st;
      stmt b
    | Ast.SWhile (c, b) ->
      expr c;
      stmt b
    | Ast.SDoWhile (b, c) ->
      stmt b;
      expr c
    | Ast.SBreak | Ast.SContinue | Ast.SPragma _ -> ()
    | Ast.SReturn _ -> raise Probe_unsupported
  in
  stmt body;
  {
    ip_writes = Array.of_list (List.rev !writes);
    ip_reads = Array.of_list (List.rev !reads);
  }

let run_probe (probe : insp_probe) (cn : omp_canon) ~lo ~stride ~n fr :
    bool * int =
  if Array.length probe.ip_writes = 0 then (true, 0)
  else begin
    let wlast = Hashtbl.create 64 and rlast = Hashtbl.create 64 in
    let checks = ref 0 in
    let conflict = ref false in
    let fr' = Array.copy fr in
    (try
       let k = ref 0 in
       while (not !conflict) && !k < n do
         fr'.(cn.oc_slot) <- Mem.VInt (lo + (!k * stride));
         Array.iter
           (fun eval ->
             let a = eval fr' in
             incr checks;
             (match Hashtbl.find_opt wlast a with
             | Some j when j <> !k -> conflict := true
             | _ -> ());
             (match Hashtbl.find_opt rlast a with
             | Some j when j <> !k -> conflict := true
             | _ -> ());
             Hashtbl.replace wlast a !k)
           probe.ip_writes;
         Array.iter
           (fun eval ->
             let a = eval fr' in
             incr checks;
             (match Hashtbl.find_opt wlast a with
             | Some j when j <> !k -> conflict := true
             | _ -> ());
             Hashtbl.replace rlast a !k)
           probe.ip_reads;
         incr k
       done
     with _ -> conflict := true);
    (not !conflict, !checks)
  end

(* the ordinal the NEXT [Par] segment pushed on [rt] will have — verdicts
   are logged before their loop's segment lands, so this is the guarded
   segment's index among the profile's [Par] segments *)
let par_ordinal rt =
  List.fold_left
    (fun acc s -> match s with Trace.Par _ -> acc + 1 | Trace.Seq _ -> acc)
    0 rt.segments

let log_verdict rt pragma ~disjoint ~checks =
  if disjoint then Atomic.incr insp_disjoint_census
  else Atomic.incr insp_conflict_census;
  rt.insp_log <-
    {
      Trace.iv_par = par_ordinal rt;
      iv_unit = Trace.unit_of_pragma pragma;
      iv_disjoint = disjoint;
      iv_checks = checks;
    }
    :: rt.insp_log

let rec compile_stmt cenv (s : Ast.stmt) : stmt_code =
  let rt = cenv.rt in
  match s.Ast.sdesc with
  | Ast.SExpr e -> compile_effect cenv e
  | Ast.SDecl d -> compile_decl cenv d
  | Ast.SIf (cond, th, el) -> (
    let fc = compile_cond cenv cond in
    let fth = compile_in_scope cenv th in
    match el with
    | None ->
      if is_fast rt then (fun fr -> if fc fr then fth fr)
      else
        fun fr ->
          bump_branch rt;
          if fc fr then fth fr
    | Some el ->
      let fel = compile_in_scope cenv el in
      if is_fast rt then fun fr -> if fc fr then fth fr else fel fr
      else
        fun fr ->
          bump_branch rt;
          if fc fr then fth fr else fel fr)
  | Ast.SWhile (cond, body) ->
    let fc = compile_cond cenv cond in
    let fb = compile_in_scope cenv body in
    if is_fast rt then begin
      let fb1 =
        if stmt_has_toplevel_continue body then fun fr ->
          (try fb fr with Continue_e -> ())
        else fb
      in
      fun fr ->
        try
          while fc fr do
            fb1 fr
          done
        with Break_e -> ()
    end
    else
      fun fr ->
        (try
           bump_branch rt;
           while fc fr do
             (try fb fr with Continue_e -> ());
             bump_branch rt
           done
         with Break_e -> ())
  | Ast.SDoWhile (body, cond) ->
    let fb = compile_in_scope cenv body in
    let fc = compile_cond cenv cond in
    if is_fast rt then begin
      let fb1 =
        if stmt_has_toplevel_continue body then fun fr ->
          (try fb fr with Continue_e -> ())
        else fb
      in
      fun fr ->
        try
          let continue_loop = ref true in
          while !continue_loop do
            fb1 fr;
            continue_loop := fc fr
          done
        with Break_e -> ()
    end
    else
      fun fr ->
        (try
           let continue_loop = ref true in
           while !continue_loop do
             (try fb fr with Continue_e -> ());
             bump_branch rt;
             continue_loop := fc fr
           done
         with Break_e -> ())
  | Ast.SFor (init, cond, step, body) -> compile_for cenv ~vec:None init cond step body
  | Ast.SReturn None -> fun _ -> raise (Return_v (Mem.VInt 0))
  | Ast.SReturn (Some e) ->
    let f, _ = compile_expr cenv e in
    fun fr -> raise (Return_v (f fr))
  | Ast.SBlock ss -> compile_block cenv ss
  | Ast.SBreak -> fun _ -> raise Break_e
  | Ast.SContinue -> fun _ -> raise Continue_e
  | Ast.SPragma _ -> nop_stmt

(* a statement in its own scope (if/while bodies) *)
and compile_in_scope cenv s =
  let saved_scope = cenv.scope in
  let code = compile_stmt cenv s in
  cenv.scope <- saved_scope;
  code

(* Build (entry, cond) for a loop: [entry] runs once when the loop is
   entered, [cond] per iteration.  Hoistable bounds are evaluated into a
   hidden frame slot at entry (re-entrant across calls, unlike a shared
   ref). *)
and compile_loop_cond cenv cond step body =
  let rt = cenv.rt in
  let fallback () =
    match cond with
    | None -> (nop_stmt, fun _ -> true)
    | Some e -> (nop_stmt, compile_cond cenv e)
  in
  match hoistable_bound cond step body with
  | Some (lhs, bound, strict) -> (
    let flhs, tl = compile_expr cenv lhs in
    let fbound, tb = compile_expr cenv bound in
    match (tl, tb) with
    | (Ast.Int | Ast.Char), (Ast.Int | Ast.Char) ->
      let slot = cenv.nslots in
      cenv.nslots <- cenv.nslots + 1;
      let entry fr = fr.(slot) <- Mem.VInt (Mem.to_int (fbound fr)) in
      let cond =
        if is_fast rt then (
          (* the common induction shape [i < bound] reads a plain int slot:
             compare it against the hoisted bound slot directly *)
          match lhs.Ast.edesc with
          | Ast.Ident n
            when match lookup_local cenv n with
                 | Some (_, (Ast.Int | Ast.Char)) -> true
                 | _ -> false -> (
            let s, _ = Option.get (lookup_local cenv n) in
            if strict then fun fr -> Mem.to_int fr.(s) < Mem.to_int fr.(slot)
            else fun fr -> Mem.to_int fr.(s) <= Mem.to_int fr.(slot))
          | _ ->
            fun fr ->
              let v = Mem.to_int (flhs fr) in
              let b = Mem.to_int fr.(slot) in
              if strict then v < b else v <= b)
        else
          fun fr ->
            bump_int rt;
            let v = Mem.to_int (flhs fr) in
            let b = Mem.to_int fr.(slot) in
            if strict then v < b else v <= b
      in
      (entry, cond)
    | _ -> fallback ())
  | None -> fallback ()

and compile_decl cenv (d : Ast.decl) : stmt_code =
  let rt = cenv.rt in
  let ty = resolve cenv d.Ast.d_type in
  match ty with
  | Ast.Array (_, _) ->
    (* local array: fresh storage at each execution of the declaration *)
    let slot = fresh_slot cenv d.Ast.d_name ty in
    let rec base_and_len t =
      match resolve cenv t with
      | Ast.Array (e, Some n) ->
        let b, l = base_and_len e in
        (b, n * l)
      | t -> (t, 1)
    in
    let base, len = base_and_len ty in
    let mk () =
      match base with
      | Ast.Float -> Mem.alloc_floats rt.alloc ~elem_bytes:4 len
      | Ast.Double -> Mem.alloc_floats rt.alloc ~elem_bytes:8 len
      | Ast.Int | Ast.Char -> Mem.alloc_ints rt.alloc len
      | Ast.Ptr _ -> Mem.alloc_ptrs rt.alloc len
      | _ -> unsupported "unsupported local array type"
    in
    let name = d.Ast.d_name in
    if is_fast rt then
      fun fr ->
        let p = mk () in
        register_ptr_region rt.alloc name p;
        fr.(slot) <- Mem.VPtr p
    else
      fun fr ->
        bump_extra rt 4;
        let p = mk () in
        register_ptr_region rt.alloc name p;
        fr.(slot) <- Mem.VPtr p
  | Ast.Struct _ -> unsupported "struct values are not executable in this build"
  | _ -> (
    match d.Ast.d_init with
    | None ->
      let slot = fresh_slot cenv d.Ast.d_name ty in
      let zero =
        if is_floaty ty then Mem.VFloat 0.0
        else match ty with Ast.Ptr _ -> Mem.VNull | _ -> Mem.VInt 0
      in
      fun fr -> fr.(slot) <- zero
    | Some init ->
      (* compile the initializer BEFORE binding the name (C scoping) *)
      let finit, _ = compile_expr cenv init in
      let slot = fresh_slot cenv d.Ast.d_name ty in
      fun fr -> fr.(slot) <- coerce ty (finit fr))

and compile_block cenv (ss : Ast.stmt list) : stmt_code =
  let saved_scope = cenv.scope in
  (* pragma-aware sequencing: omp/vector pragmas bind to the next for-loop *)
  let rec go acc = function
    | [] -> List.rev acc
    | { Ast.sdesc = Ast.SPragma p; _ } :: ({ Ast.sdesc = Ast.SFor (i, c, st, b); _ })
      :: rest
      when is_omp_for p ->
      let code = compile_omp_for cenv p i c st b in
      go (code :: acc) rest
    | { Ast.sdesc = Ast.SPragma p; _ } :: rest when is_vector_pragma p ->
      (* consume consecutive vector pragmas, then the loop *)
      let rest = drop_vector_pragmas rest in
      (match rest with
      | ({ Ast.sdesc = Ast.SFor (i, c, st, b); _ }) :: rest' ->
        let code = compile_for cenv ~vec:(Some Pragma_vec) i c st b in
        go (code :: acc) rest'
      | _ -> go acc rest)
    | { Ast.sdesc = Ast.SPragma p; _ } :: guarded :: rest
      when Pragma.is_critical p || Pragma.is_atomic p ->
      go (compile_guarded cenv p guarded :: acc) rest
    | s :: rest -> go (compile_stmt cenv s :: acc) rest
  in
  let codes = Array.of_list (go [] ss) in
  cenv.scope <- saved_scope;
  fun fr ->
    for i = 0 to Array.length codes - 1 do
      codes.(i) fr
    done

and is_omp_for p = Pragma.is_omp_for p

and is_vector_pragma p = p = "ivdep" || p = "vector always" || p = "simd"

(* [#pragma omp critical] / [#pragma omp atomic] + the guarded statement:
   real mutual exclusion on the named lock (atomic shares one reserved
   name), so concurrent chunks of an enclosing parallel loop serialize
   their shared updates.  On the traced (sequential) path the held-lock set
   is additionally maintained so every logged access carries it — the
   lock-event channel of both race engines. *)
and compile_guarded cenv pragma guarded : stmt_code =
  let rt = cenv.rt in
  let name =
    if Pragma.is_atomic pragma then Runtime.Locks.atomic_name
    else
      match Pragma.critical_name pragma with
      | Some "" | None -> Runtime.Locks.anonymous_critical
      | Some n -> n
  in
  let lid = Runtime.Locks.id name in
  let fstmt = compile_stmt cenv guarded in
  fun fr ->
    Runtime.Locks.acquire lid;
    if rt.trace_accesses then
      rt.held_locks <- List.sort_uniq compare (lid :: rt.held_locks);
    let release () =
      if rt.trace_accesses then
        rt.held_locks <- List.filter (fun l -> l <> lid) rt.held_locks;
      Runtime.Locks.release lid
    in
    (match fstmt fr with
    | () -> release ()
    | exception e ->
      release ();
      raise e)

and drop_vector_pragmas = function
  | { Ast.sdesc = Ast.SPragma p; _ } :: rest when is_vector_pragma p ->
    drop_vector_pragmas rest
  | l -> l

and compile_for cenv ~vec init cond step body : stmt_code =
  let rt = cenv.rt in
  let saved_scope = cenv.scope in
  let finit =
    match init with
    | None -> nop_stmt
    | Some (Ast.FInitExpr e) -> compile_effect cenv e
    | Some (Ast.FInitDecl d) -> compile_decl cenv d
  in
  let fentry, fcond = compile_loop_cond cenv cond step body in
  let fstep =
    match step with None -> nop_stmt | Some e -> compile_effect cenv e
  in
  (* vectorization classification *)
  let vec_flag =
    match vec with
    | Some v -> Some v
    | None -> if autovec_eligible cenv.funcs init cond body then Some Auto_vec else None
  in
  let fbody = compile_stmt cenv body in
  cenv.scope <- saved_scope;
  (* One body iteration.  When a parallel iteration is being recorded at
     tile granularity and this loop sits directly inside the recorded body
     (rec_depth = 0), its iterations are that (tile) iteration's
     point-iteration children: mark where each begins in the access log. *)
  let run_body fr =
    match rt.rec_points with
    | None -> ( try fbody fr with Continue_e -> ())
    | Some pts ->
      if rt.rec_depth = 0 then pts := rt.rec_nacc :: !pts;
      rt.rec_depth <- rt.rec_depth + 1;
      (try (try fbody fr with Continue_e -> ())
       with e ->
         rt.rec_depth <- rt.rec_depth - 1;
         raise e);
      rt.rec_depth <- rt.rec_depth - 1
  in
  match vec_flag with
  | _ when is_fast rt ->
    (* the fast variant skips vec-mode tracking entirely: flop
       classification only matters to the (absent) counters.  rec_points
       is always None here, so the body needs no recording wrapper, and
       the continue handler is elided when the body cannot continue. *)
    let fb1 =
      if stmt_has_toplevel_continue body then fun fr ->
        (try fbody fr with Continue_e -> ())
      else fbody
    in
    fun fr ->
      finit fr;
      fentry fr;
      (try
         while fcond fr do
           fb1 fr;
           fstep fr
         done
       with Break_e -> ())
  | None ->
    fun fr ->
      finit fr;
      fentry fr;
      (try
         bump_branch rt;
         while fcond fr do
           run_body fr;
           fstep fr;
           bump_branch rt
         done
       with Break_e -> ())
  | Some mode ->
    fun fr ->
      let ds = cur rt in
      let saved = ds.ds_vec_mode in
      (* pragma beats auto; never downgrade an enclosing pragma *)
      ds.ds_vec_mode <- (if saved = Pragma_vec then saved else mode);
      finit fr;
      fentry fr;
      (try
         bump_branch rt;
         while fcond fr do
           run_body fr;
           fstep fr;
           bump_branch rt
         done
       with Break_e -> ());
      ds.ds_vec_mode <- saved

(* Canonical induction analysis for a candidate parallel loop; [None] means
   "fall back to sequential execution".  Must run while the loop's init is
   in scope (after [finit] is compiled).  [privatized] lists names the pragma
   privatizes (induction variable + private(...) clause): the body may
   mutate those — each chunk runs on its own frame copy, which implements
   exactly OpenMP's private semantics — so a tiled/skewed multi-loop nest
   whose body drives inner loop iterators still dispatches to the pool.
   [reductions] lists the pragma's recognized [reduction(op:name)] pairs:
   each name must resolve to a local scalar slot distinct from the
   induction variable, and every use of it in the body must be an
   [op]-shaped update ({!red_body_ok}) — then the accumulator is classified
   into [oc_reds] and its mutation is admitted (chunks run identity-seeded
   private copies, merged deterministically at the join).  A reduction that
   fails classification disqualifies the whole loop: executing it in
   parallel without the merge would lose updates. *)
and canon_induction cenv ~privatized ~reductions init cond step body :
    omp_canon option =
  let ind =
    match init with
    | Some
        (Ast.FInitExpr
          { Ast.edesc = Ast.Assign (Ast.OpAssign, { Ast.edesc = Ast.Ident n; _ }, _); _ })
      ->
      Some n
    | Some (Ast.FInitDecl { Ast.d_name; d_init = Some _; _ }) -> Some d_name
    | _ -> None
  in
  match ind with
  | None -> None
  | Some n -> (
    match lookup_local cenv n with
    | Some (slot, (Ast.Int | Ast.Char)) -> (
      let stride =
        match step with
        | Some { Ast.edesc = Ast.IncDec { inc = true; arg = { Ast.edesc = Ast.Ident m; _ }; _ }; _ }
          when m = n ->
          Some 1
        | Some
            { Ast.edesc =
                Ast.Assign
                  (Ast.OpAddAssign, { Ast.edesc = Ast.Ident m; _ },
                   { Ast.edesc = Ast.IntLit k; _ });
              _ }
          when m = n && k > 0 ->
          Some k
        | Some
            { Ast.edesc =
                Ast.Assign
                  (Ast.OpAssign, { Ast.edesc = Ast.Ident m; _ },
                   { Ast.edesc =
                       Ast.Binop
                         (Ast.Add, { Ast.edesc = Ast.Ident m2; _ },
                          { Ast.edesc = Ast.IntLit k; _ });
                     _ });
              _ }
          when m = n && m2 = n && k > 0 ->
          Some k
        | _ -> None
      in
      match (stride, hoistable_bound cond step body) with
      | Some stride, Some ({ Ast.edesc = Ast.Ident n'; _ }, bound, strict)
        when n' = n ->
        if
          side_effect_free_bound bound
          && (not (stmt_has_return body))
          && (not (stmt_has_toplevel_break body))
          && (not (body_may_exit cenv body))
          && List.for_all
               (* no mutation of any register variable visible outside the
                  body — including the induction variable itself — except
                  names the pragma privatizes (chunks run on frame copies);
                  memory (arrays, globals through their address) is shared
                  as in real OpenMP and left to the race checker *)
               (fun m ->
                 Option.is_none (lookup_local cenv m)
                 || (m <> n
                    && (List.mem m privatized
                       || List.mem_assoc m reductions)))
               (mutated_in_stmt body)
        then begin
          (* classify every reduction accumulator, or reject the loop *)
          let classify (nm, op) =
            if nm = n then None
            else
              match lookup_local cenv nm with
              | Some (rslot, rty) -> (
                match resolve cenv rty with
                | (Ast.Int | Ast.Char | Ast.Float | Ast.Double) as t
                  when red_body_ok nm op body ->
                  Some { rd_slot = rslot; rd_op = op; rd_floaty = is_floaty t }
                | _ -> None)
              | None -> None
          in
          let reds = List.map classify reductions in
          if List.exists Option.is_none reds then None
          else
            let fbound, tb = compile_expr cenv bound in
            match tb with
            | Ast.Int | Ast.Char ->
              Some
                {
                  oc_slot = slot;
                  oc_bound = fbound;
                  oc_strict = strict;
                  oc_stride = stride;
                  oc_reds = List.filter_map Fun.id reds;
                }
            | _ -> None
        end
        else None
      | _ -> None)
    | _ -> None)

(* #pragma omp parallel for: record one cost snapshot per iteration of the
   annotated loop; when a domain pool is attached and the loop is canonical,
   the iterations really execute in parallel (see [exec_parallel]). *)
and compile_omp_for cenv pragma init cond step body : stmt_code =
  let rt = cenv.rt in
  let sched = Trace.sched_of_pragma pragma in
  let saved_scope = cenv.scope in
  let saved_ctx = cenv.shadow_ctx in
  (* Open the shadow-slot context BEFORE compiling any loop component, so
     every slot-resolved access in init/cond/step/body sees it.  A nested
     pragma keeps the OUTER context: its iterations run inside one outer
     iteration, and the outer [sx_limit] is the one that separates shared
     from body-local slots. *)
  (* Names the pragma privatizes: the induction variable (OpenMP's
     for-directive privatizes it; the FInitDecl form declares it inside the
     loop and needs no entry) plus the private(...) clause.  Reduction
     accumulators are privatized too — every reduction(...) name, whether
     or not its operator is one we can parallelize, runs on a per-thread
     copy under real OpenMP, so the race detector must not see it as a
     shared scalar — but only recognized operators ([clause_reds]) admit
     parallel dispatch, via the identity-seeded merge in [exec_parallel]. *)
  let clause_private =
    (match init with
    | Some
        (Ast.FInitExpr
          { Ast.edesc = Ast.Assign (_, { Ast.edesc = Ast.Ident n; _ }, _); _ }) ->
      [ n ]
    | _ -> [])
    @ Trace.private_of_pragma pragma
  in
  let reduction_clause = Trace.reduction_of_pragma pragma in
  let clause_reds =
    List.filter_map
      (fun (ops, nm) ->
        match red_op_of_string ops with Some op -> Some (nm, op) | None -> None)
      reduction_clause
  in
  let privatized = clause_private @ List.map snd reduction_clause in
  if rt.shadow_slots && saved_ctx = None then begin
    let sx = { sx_limit = cenv.nslots; sx_private = Hashtbl.create 4 } in
    cenv.shadow_ctx <- Some sx;
    let privatize n =
      match lookup_local cenv n with
      | Some (slot, _) -> Hashtbl.replace sx.sx_private slot ()
      | None -> ()  (* e.g. private(x) for a var declared inside the body *)
    in
    List.iter privatize privatized
  end;
  let finit =
    match init with
    | None -> nop_stmt
    | Some (Ast.FInitExpr e) -> compile_effect cenv e
    | Some (Ast.FInitDecl d) -> compile_decl cenv d
  in
  let fentry, fcond = compile_loop_cond cenv cond step body in
  let fstep =
    match step with None -> nop_stmt | Some e -> compile_effect cenv e
  in
  (* tile_grain admits privatized-name mutation (multi-loop nest bodies);
     off reverts to the single-statement-body dispatch of PR 3 *)
  let canon =
    canon_induction cenv
      ~privatized:(if rt.tile_grain then clause_private else [])
      ~reductions:clause_reds init cond step body
  in
  (* Inspector probe, for runtime-checked pragmas ([[inspector:…]] marker
     from [Pluto]'s gather path).  Compiled here — after the init
     declaration entered the scope, before body compilation pollutes it —
     so every address evaluator resolves names at pragma time.  A probe
     that cannot be built ([None]) conservatively forces the sequential
     fallback; the disjointness verdict is then [false] with zero checks. *)
  let insp = Trace.inspector_of_pragma pragma in
  let probe =
    match insp with
    | None -> None
    | Some checked ->
      let ind_name =
        match init with
        | Some
            (Ast.FInitExpr
              { Ast.edesc = Ast.Assign (_, { Ast.edesc = Ast.Ident n; _ }, _);
                _
              }) ->
          Some n
        | Some (Ast.FInitDecl d) -> Some d.Ast.d_name
        | _ -> None
      in
      let unstable =
        List.filter
          (fun n -> Some n <> ind_name)
          (probe_locals [] body @ mutated_in_stmt body)
      in
      (try Some (probe_of_body cenv ~checked ~unstable body)
       with Probe_unsupported | Unsupported _ -> None)
  in
  let fbody = compile_stmt cenv body in
  cenv.scope <- saved_scope;
  cenv.shadow_ctx <- saved_ctx;
  (* One iteration of the nested-pragma sequential path.  During traced
     recording at tile granularity this mirrors [compile_for]'s body
     wrapper: the pragma'd inner loop marks where each of its iterations
     begins in the outer iteration's access log, so the race engines
     attribute accesses through a nested pragma exactly as through a plain
     nested loop. *)
  let run_body_marked fr =
    match rt.rec_points with
    | None -> ( try fbody fr with Continue_e -> ())
    | Some pts ->
      if rt.rec_depth = 0 then pts := rt.rec_nacc :: !pts;
      rt.rec_depth <- rt.rec_depth + 1;
      (try (try fbody fr with Continue_e -> ())
       with e ->
         rt.rec_depth <- rt.rec_depth - 1;
         raise e);
      rt.rec_depth <- rt.rec_depth - 1
  in
  (* chain-slicing quantum of the modeled nested dispatch: the schedule's
     chunk parameter, or a fixed quantum for plain static (slicing has no
     cost or output effect — it only sets the stealable granularity) *)
  let nested_grain =
    match sched with
    | Trace.Static -> 16
    | Trace.Static_chunk c | Trace.Dynamic c | Trace.Guided c -> max 1 c
  in
  (* Run the inspector over the canonical trip space (after the real init
     has executed, so the induction slot holds the lower bound) and log the
     verdict.  The bound closure is re-evaluated by the executor afterwards;
     [canon_induction] only admits side-effect-free bounds, so the double
     evaluation is invisible. *)
  let inspect (cn : omp_canon) fr =
    let lo = Mem.to_int fr.(cn.oc_slot) in
    let hi_incl =
      let b = Mem.to_int (cn.oc_bound fr) in
      if cn.oc_strict then b - 1 else b
    in
    let stride = cn.oc_stride in
    let n = if hi_incl < lo then 0 else ((hi_incl - lo) / stride) + 1 in
    let disjoint, checks =
      match probe with
      | Some p -> run_probe p cn ~lo ~stride ~n fr
      | None -> (false, 0)
    in
    log_verdict rt pragma ~disjoint ~checks;
    disjoint
  in
  if is_fast rt then
    (* the fast closure: same dispatch decisions (nested regions fork onto
       the executing stream's deque when reached from inside a dispatched
       chunk, and run sequentially otherwise; the pool takes canonical
       top-level loops), no recording *)
    fun fr ->
      if (cur rt).ds_slot <> 0 || rt.in_parallel then begin
        match (rt.pool, canon) with
        | Some pool, Some cn
          when insp = None
               && Runtime.Pool.size pool > 1
               && Runtime.Pool.in_chunk pool ->
          (* a runtime-checked pragma never forks from inside a dispatched
             chunk: the inspector verdict is a whole-loop property and the
             nested sequential path below is always sound *)
          exec_parallel_nested_fast rt pool sched cn fbody finit fr
        | _ ->
          finit fr;
          fentry fr;
          (try
             while fcond fr do
               (try fbody fr with Continue_e -> ());
               fstep fr
             done
           with Break_e -> ())
      end
      else begin
        (* sequential, but still delimited as a parallel region so the
           reported region count matches the modeled engine *)
        let seq_region ~init =
          rt.segments <- Trace.Seq (Cost.create ()) :: rt.segments;
          rt.in_parallel <- true;
          init fr;
          fentry fr;
          (try
             while fcond fr do
               (try fbody fr with Continue_e -> ());
               fstep fr
             done
           with Break_e -> ());
          rt.in_parallel <- false;
          rt.segments <- Trace.Par { sched; iters = [||] } :: rt.segments
        in
        match (rt.pool, canon) with
        | Some pool, Some cn when Runtime.Pool.size pool > 1 -> (
          match insp with
          | None -> exec_parallel_fast rt pool sched cn fbody finit fr
          | Some _ ->
            (* init once on the master, then inspect; the executor (or the
               conflict fallback) must not re-run it *)
            finit fr;
            if inspect cn fr then
              exec_parallel_fast rt pool sched cn fbody nop_stmt fr
            else seq_region ~init:nop_stmt)
        | _ -> (
          match (canon, insp) with
          | Some cn, Some _ ->
            (* no pool to dispatch to, but the verdict is still logged so
               diagnostics and the race engines see it in every variant *)
            finit fr;
            ignore (inspect cn fr : bool);
            seq_region ~init:nop_stmt
          | None, Some _ ->
            log_verdict rt pragma ~disjoint:false ~checks:0;
            seq_region ~init:finit
          | _, None -> seq_region ~init:finit)
      end
  else fun fr ->
    if (cur rt).ds_slot <> 0 || rt.in_parallel then begin
      match rt.pool with
      | Some pool
        when Runtime.Pool.size pool > 1
             && Runtime.Pool.in_chunk pool
             && not rt.trace_accesses ->
        (* nested region inside a dispatched chunk: a yield-sliced chain
           through the deques (see [exec_parallel_nested]); canonicity is
           irrelevant because the chain replays the real loop control *)
        exec_parallel_nested rt pool ~fentry ~fcond ~fstep ~grain:nested_grain
          fbody finit fr
      | _ -> (
        (* nested parallel regions otherwise execute sequentially (OpenMP
           default), with point-iteration marks during traced recording *)
        finit fr;
        fentry fr;
        try
          bump_branch rt;
          while fcond fr do
            run_body_marked fr;
            fstep fr;
            bump_branch rt
          done
        with Break_e -> ())
    end
    else begin
      (* sequential recording path; [init] is the loop init, or a nop when
         the inspector wrapper already ran it *)
      let seq_record ~init =
        let counters = (master rt).ds_counters in
        rt.segments <- Trace.Seq (Cost.diff counters rt.seg_start) :: rt.segments;
        rt.in_parallel <- true;
        let iters = ref [] in
        let iter_accs = ref [] in
        let iter_points = ref [] in
        init fr;
        fentry fr;
        (try
           bump_branch rt;
           while fcond fr do
             let snap = Cost.copy counters in
             (* fresh access buffer per iteration: loop-control evaluation
                between iterations is deliberately NOT logged (each OpenMP
                thread privatizes the induction variable and re-reads only
                loop-invariant bounds) *)
             let buf = if rt.trace_accesses then Some (ref []) else None in
             rt.access_log <- buf;
             (* nested point-iteration marks: the immediate child loop of the
                body (the next tile/point loop level) records where each of
                its iterations starts in this iteration's access log *)
             let pts =
               if rt.trace_accesses && rt.tile_grain then Some (ref []) else None
             in
             rt.rec_points <- pts;
             rt.rec_depth <- 0;
             rt.rec_nacc <- 0;
             (try fbody fr with Continue_e -> ());
             fstep fr;
             rt.access_log <- None;
             rt.rec_points <- None;
             bump_branch rt;
             iters := Cost.diff counters snap :: !iters;
             (match buf with
             | Some b -> iter_accs := Array.of_list (List.rev !b) :: !iter_accs
             | None -> ());
             (match pts with
             | Some p -> iter_points := Array.of_list (List.rev !p) :: !iter_points
             | None -> ())
           done
         with Break_e -> ());
        rt.access_log <- None;
        rt.rec_points <- None;
        rt.in_parallel <- false;
        rt.segments <-
          Trace.Par { sched; iters = Array.of_list (List.rev !iters) } :: rt.segments;
        if rt.trace_accesses then
          rt.par_traces <-
            { Trace.pt_sched = sched;
              pt_unit = Trace.unit_of_pragma pragma;
              pt_accesses = Array.of_list (List.rev !iter_accs);
              pt_points = Array.of_list (List.rev !iter_points) }
            :: rt.par_traces;
        rt.seg_start <- Cost.copy counters
      in
      match (rt.pool, canon) with
      | Some pool, Some cn when Runtime.Pool.size pool > 1 && not rt.trace_accesses
        -> (
        (* real fork/join over the domain pool; access tracing stays on the
           sequential path (the race detector replays schedules itself) *)
        match insp with
        | None -> exec_parallel rt pool sched cn fbody finit fr
        | Some _ ->
          finit fr;
          if inspect cn fr then exec_parallel rt pool sched cn fbody nop_stmt fr
          else seq_record ~init:nop_stmt)
      | _ -> (
        match (canon, insp) with
        | Some cn, Some _ ->
          (* jobs=1 or traced: no dispatch either way, but the verdict is
             logged so diagnostics and the racecheck cross-check see it *)
          finit fr;
          ignore (inspect cn fr : bool);
          seq_record ~init:nop_stmt
        | None, Some _ ->
          log_verdict rt pragma ~disjoint:false ~checks:0;
          seq_record ~init:finit
        | _, None -> seq_record ~init:finit)
    end
