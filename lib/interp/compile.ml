(** Closure-compiling interpreter for the C subset.

    Each expression compiles to a [frame -> value] closure with slot-resolved
    variable access and type-specialized arithmetic, fast enough to execute
    the evaluation workloads at realistic (scaled) sizes.  Every operation
    bumps the {!Cost} counters; memory accesses go through the {!Cache}
    simulator; [#pragma omp parallel for] loops record one cost snapshot per
    iteration into the {!Trace} profile. *)

open Cfront
open Support

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun m -> raise (Unsupported m)) fmt

(* ------------------------------------------------------------------ *)
(* Runtime state *)

type vec_mode = Scalar | Auto_vec | Pragma_vec

(** Per-execution-stream interpreter state.  Stream 0 is the master — the
    sequential instruction stream of the program; streams 1.. belong to the
    domain pool's workers and are only active inside a dispatched
    [#pragma omp parallel for].  Each stream owns its cost counters, its own
    L1/L2 cache simulator instance (per-core caches, truer to the modeled
    machine than a shared simulator would be), its output buffer and its
    vectorization mode, so parallel loop bodies never contend on hot
    interpreter state.  Worker results are merged into the master
    deterministically at the join (see [exec_parallel]). *)
type dstate = {
  ds_slot : int;  (** stream id: 0 = master, 1.. = pool workers *)
  ds_counters : Cost.t;
  ds_cache : Cache.t;
  mutable ds_out : Buffer.t;
      (** master: the program's output; workers: the current chunk's
          private buffer, spliced into the master in iteration order *)
  mutable ds_vec_mode : vec_mode;
}

type rt = {
  states : dstate array;  (** [states.(0)] = master; length = 1 + pool size *)
  dls : dstate Domain.DLS.key;
      (** the stream the current domain executes; compiled closures resolve
          their state through this at run time *)
  pool : Runtime.Pool.t option;  (** [Some p] enables real parallel dispatch *)
  alloc : Mem.allocator;  (** shared: internally synchronized *)
  mutable segments : Trace.segment list;  (** reversed; master-only *)
  mutable seg_start : Cost.t;
  mutable in_parallel : bool;
  trace_accesses : bool;  (** record per-access logs inside parallel loops *)
  shadow_slots : bool;
      (** shadow function-local frame slots as addressable {!Mem} regions so
          the race detector sees local-scalar accesses too (closes the
          register blind spot for shared enclosing-scope scalars) *)
  mutable access_log : Trace.access list ref option;
      (** the current parallel iteration's buffer; [None] outside parallel
          loops or when tracing is off *)
  mutable par_traces : Trace.par_trace list;  (** reversed, with segments *)
  tile_grain : bool;
      (** dispatch multi-loop (tiled/skewed) nest bodies at the granularity
          of the annotated loop — whole tiles become pool jobs — and record
          nested point-iteration structure into {!Trace.par_trace.pt_points};
          off = PR-3 behaviour (only single-statement canonical bodies
          parallelize, traces stay flat) *)
  mutable rec_points : int list ref option;
      (** while recording one parallel iteration with [tile_grain]: reversed
          list of access offsets where each depth-1 point-iteration child
          begins; [None] outside recording *)
  mutable rec_depth : int;
      (** loop depth below the recorded parallel iteration's body (0 = the
          body itself, so its immediate child loop marks points) *)
  mutable rec_nacc : int;  (** accesses logged so far in the current
                               parallel iteration *)
  mutable held_locks : int list;
      (** {!Runtime.Locks} ids of the [critical]/[atomic] sections the
          recording (sequential) execution is currently inside, sorted
          ascending; stamped into every logged access.  Only maintained
          when [trace_accesses] — traced runs never dispatch to the pool,
          so a single field is race-free — while real parallel execution
          relies on the actual mutexes instead. *)
}

(* Census of runtimes ever created.  Every [rt] owns its DLS key, allocator,
   output buffers, and per-site promotion memos, so this counter is the
   serve daemon's isolation invariant made observable: it must grow by at
   least one per executed request ([{"cmd":"stats"}] reports it, the serve
   suite asserts on it) — a stagnating census would mean two requests
   shared mutable interpreter state. *)
let rt_census = Atomic.make 0

let rts_created () = Atomic.get rt_census

let create_rt ?l1_bytes ?l2_bytes ?(trace_accesses = false) ?(shadow_slots = false)
    ?(tile_grain = true) ?pool () =
  Atomic.incr rt_census;
  let mk_dstate slot =
    let counters = Cost.create () in
    {
      ds_slot = slot;
      ds_counters = counters;
      ds_cache = Cache.create ?l1_bytes ?l2_bytes counters;
      ds_out = Buffer.create 256;
      ds_vec_mode = Scalar;
    }
  in
  let streams = match pool with None -> 1 | Some p -> 1 + Runtime.Pool.size p in
  let states = Array.init streams mk_dstate in
  {
    states;
    dls = Domain.DLS.new_key (fun () -> states.(0));
    pool;
    alloc = Mem.create_allocator ();
    segments = [];
    seg_start = Cost.create ();
    in_parallel = false;
    trace_accesses;
    shadow_slots;
    access_log = None;
    par_traces = [];
    tile_grain;
    rec_points = None;
    rec_depth = 0;
    rec_nacc = 0;
    held_locks = [];
  }

let master rt = rt.states.(0)

let n_streams rt = Array.length rt.states

(** The executing domain's stream.  [Domain.DLS] rather than a mutable
    [rt] field because compiled closures are shared verbatim between
    domains: the same closure must find the master state on the main domain
    and a worker state inside a dispatched chunk. *)
let[@inline] cur rt = Domain.DLS.get rt.dls

type frame = Mem.value array

exception Return_v of Mem.value

exception Break_e

exception Continue_e

(* ------------------------------------------------------------------ *)
(* Compile-time environment *)

type global_cell =
  | GScalar of { cell : Mem.value ref; addr : int }
  | GArray of { view : Mem.ptr }

type func_entry = {
  fe_def : Ast.func;
  mutable fe_run : (Mem.value array -> Mem.value) option;
}

(** Lexical shadow-slot context, set while compiling the components of a
    [#pragma omp parallel for].  A frame slot created {e before} the pragma
    ([slot < sx_limit]) holds an enclosing-scope scalar that real OpenMP
    would share between threads — those accesses must reach the race
    detector.  Slots created inside the loop body, the induction variable
    and [private(...)] clause names are privatized and stay registers. *)
type shadow_ctx = {
  sx_limit : int;  (** [cenv.nslots] at the pragma *)
  sx_private : (int, unit) Hashtbl.t;  (** privatized slots *)
}

type cenv = {
  tenv : Sema.Env.t;
  funcs : (string, func_entry) Hashtbl.t;
  globals : (string, global_cell * Ast.ctype) Hashtbl.t;
  rt : rt;
  mutable scope : (string * (int * Ast.ctype)) list;  (** name -> slot, type *)
  mutable nslots : int;
  mutable shadow_ctx : shadow_ctx option;  (** inside an omp loop, if shadowing *)
  mutable cur_fun : int;  (** ordinal of the function being compiled *)
  shadow_addrs : (int * int, int * int) Hashtbl.t;
      (** (function ordinal, slot) -> (shadow addr, bytes); slot numbers
          restart per function, so the key must carry the function *)
}

let fresh_slot cenv name ty =
  let slot = cenv.nslots in
  cenv.nslots <- cenv.nslots + 1;
  cenv.scope <- (name, (slot, ty)) :: cenv.scope;
  slot

let lookup_local cenv name = List.assoc_opt name cenv.scope

(* ------------------------------------------------------------------ *)
(* Type plumbing *)

let rec resolve cenv ty = Sema.Env.resolve cenv.tenv ty |> strip_quals cenv

and strip_quals _cenv ty = ty

let scalar_bytes = function
  | Ast.Char -> 1
  | Ast.Int -> 4
  | Ast.Float -> 4
  | Ast.Double -> 8
  | Ast.Ptr _ -> 8
  | Ast.Void -> 1
  | Ast.Array _ | Ast.Struct _ | Ast.Named _ -> 8

let rec type_bytes cenv ty =
  match resolve cenv ty with
  | Ast.Array (elt, Some n) -> n * type_bytes cenv elt
  | t -> scalar_bytes t

let is_floaty = function Ast.Float | Ast.Double -> true | _ -> false

(* Arithmetic result type *)
let promote a b =
  match (a, b) with
  | Ast.Double, _ | _, Ast.Double -> Ast.Double
  | Ast.Float, _ | _, Ast.Float -> Ast.Float
  | _ -> Ast.Int

(* Subscript typing: one subscript on T[N][M] yields a T[M] view that skips
   M flat elements per index; one subscript on T* / T[N] yields a T value. *)
let subscript_info cenv ty =
  (* returns (result_type, elements_per_index, result_is_view) *)
  match resolve cenv ty with
  | Ast.Array (elt, _) | Ast.Ptr { elt; _ } -> (
    let elt = resolve cenv elt in
    match elt with
    | Ast.Array _ ->
      let rec flat t =
        match resolve cenv t with Ast.Array (e, Some n) -> n * flat e | _ -> 1
      in
      (elt, flat elt, true)
    | _ -> (elt, 1, false))
  | t -> unsupported "subscript on non-array type %s" (Ast_printer.type_to_string t)

(* ------------------------------------------------------------------ *)
(* Cost helpers (inlined into closures) *)

(* All cost helpers resolve the executing stream through [cur] at run time:
   the same compiled closure charges the master's counters when run
   sequentially and a worker's counters inside a dispatched chunk. *)

let[@inline] bump_int rt =
  let c = (cur rt).ds_counters in
  c.Cost.int_ops <- c.Cost.int_ops + 1

let[@inline] bump_int_n rt n =
  let c = (cur rt).ds_counters in
  c.Cost.int_ops <- c.Cost.int_ops + n

let[@inline] bump_branch rt =
  let c = (cur rt).ds_counters in
  c.Cost.branches <- c.Cost.branches + 1

let[@inline] bump_load c = c.Cost.loads <- c.Cost.loads + 1

let[@inline] bump_store c = c.Cost.stores <- c.Cost.stores + 1

let[@inline] bump_extra rt n =
  let c = (cur rt).ds_counters in
  c.Cost.extra_cycles <- c.Cost.extra_cycles + n

(* builtin call: one call plus a latency weight *)
let[@inline] bump_builtin rt w =
  let c = (cur rt).ds_counters in
  c.Cost.builtin_calls <- c.Cost.builtin_calls + 1;
  c.Cost.extra_cycles <- c.Cost.extra_cycles + w

let[@inline] bump_user_call rt overhead =
  let c = (cur rt).ds_counters in
  c.Cost.calls <- c.Cost.calls + 1;
  c.Cost.extra_cycles <- c.Cost.extra_cycles + overhead

let[@inline] bump_vec ds n =
  match ds.ds_vec_mode with
  | Scalar -> ()
  | Auto_vec -> ds.ds_counters.Cost.flops_autovec <- ds.ds_counters.Cost.flops_autovec + n
  | Pragma_vec ->
    ds.ds_counters.Cost.flops_pragma_vec <- ds.ds_counters.Cost.flops_pragma_vec + n

let[@inline] bump_fadd rt =
  let ds = cur rt in
  ds.ds_counters.Cost.float_adds <- ds.ds_counters.Cost.float_adds + 1;
  bump_vec ds 1

let[@inline] bump_fmul rt =
  let ds = cur rt in
  ds.ds_counters.Cost.float_muls <- ds.ds_counters.Cost.float_muls + 1;
  bump_vec ds 1

let[@inline] bump_fdiv rt =
  let ds = cur rt in
  ds.ds_counters.Cost.float_divs <- ds.ds_counters.Cost.float_divs + 1;
  bump_vec ds 1

(* Label the address range of a freshly allocated object so reports can name
   it (the bump allocator keeps ranges disjoint). *)
let register_ptr_region alloc label (p : Mem.ptr) =
  Mem.register_region alloc ~label ~base:p.Mem.p_base
    ~bytes:(Mem.obj_length p.Mem.p_obj * p.Mem.p_elem_bytes)
    ~elem_bytes:p.Mem.p_elem_bytes

(* Race-detector hook: record the logical access even when the backend model
   treats it as register-resident — the C program still performs it, and the
   happens-before analysis must see every load/store of the parallel loop. *)
let[@inline] log_access rt loc ~addr ~bytes ~write =
  match rt.access_log with
  | None -> ()
  | Some buf ->
    rt.rec_nacc <- rt.rec_nacc + 1;
    buf :=
      {
        Trace.ac_loc = loc;
        ac_addr = addr;
        ac_bytes = bytes;
        ac_write = write;
        ac_locks = rt.held_locks;
      }
      :: !buf

(* Shadow address of a frame slot, when the slot holds a scalar that real
   OpenMP would share between the threads of the pragma being compiled:
   allocated (and labeled with the variable's name) on first use, stable for
   the rest of the program.  [None] = the slot stays a register (shadowing
   off, not inside a pragma, privatized, or declared inside the body). *)
let slot_shadow cenv slot ty =
  if not cenv.rt.shadow_slots then None
  else
    match cenv.shadow_ctx with
    | None -> None
    | Some sx ->
      if slot >= sx.sx_limit || Hashtbl.mem sx.sx_private slot then None
      else begin
        let key = (cenv.cur_fun, slot) in
        match Hashtbl.find_opt cenv.shadow_addrs key with
        | Some ab -> Some ab
        | None ->
          let bytes = scalar_bytes (resolve cenv ty) in
          let label =
            match List.find_opt (fun (_, (s, _)) -> s = slot) cenv.scope with
            | Some (n, _) -> n
            | None -> Printf.sprintf "local#%d" slot
          in
          let addr = Mem.shadow_slot cenv.rt.alloc ~label ~bytes in
          Hashtbl.replace cenv.shadow_addrs key (addr, bytes);
          Some (addr, bytes)
      end

(* Per-site register-promotion memos: a repeated access at the same site and
   the same address is a register hit under an optimizing backend (loop
   invariant code motion / scalar replacement), so it costs nothing and does
   not reach the cache.  [loc] is the source location of the site, carried
   into the access log.  The memo is sharded per execution stream
   ({!Cache.Memo}) so concurrent workers model private registers instead of
   racing on one cell. *)
let memo_load rt loc =
  let memo = Cache.Memo.create ~streams:(n_streams rt) in
  fun (p : Mem.ptr) ->
    let a = Mem.addr_of p in
    log_access rt loc ~addr:a ~bytes:p.Mem.p_elem_bytes ~write:false;
    let ds = cur rt in
    if Cache.Memo.probe memo ~stream:ds.ds_slot a then Mem.peek p
    else begin
      bump_load ds.ds_counters;
      Mem.load ds.ds_cache p
    end

let memo_store rt loc =
  let memo = Cache.Memo.create ~streams:(n_streams rt) in
  fun (p : Mem.ptr) v ->
    let a = Mem.addr_of p in
    log_access rt loc ~addr:a ~bytes:p.Mem.p_elem_bytes ~write:true;
    let ds = cur rt in
    if Cache.Memo.probe memo ~stream:ds.ds_slot a then Mem.poke p v
    else begin
      bump_store ds.ds_counters;
      Mem.store ds.ds_cache p v
    end

(* ------------------------------------------------------------------ *)
(* Builtin math functions *)

let builtin_math : (string * (float -> float) * int) list =
  [
    ("sin", sin, 40); ("cos", cos, 40); ("tan", tan, 60);
    ("asin", asin, 60); ("acos", acos, 60); ("atan", atan, 50);
    ("sinh", sinh, 60); ("cosh", cosh, 60); ("tanh", tanh, 60);
    ("exp", exp, 40); ("log", log, 40); ("log2", (fun x -> log x /. log 2.0), 45);
    ("log10", log10, 45); ("sqrt", sqrt, 20); ("fabs", abs_float, 2);
    ("floor", floor, 4); ("ceil", ceil, 4); ("round", Float.round, 4);
    ("sinf", sin, 30); ("cosf", cos, 30); ("sqrtf", sqrt, 14);
    ("expf", exp, 30); ("logf", log, 30); ("fabsf", abs_float, 2);
  ]

let builtin_math2 : (string * (float -> float -> float) * int) list =
  [
    ("pow", ( ** ), 60); ("powf", ( ** ), 50);
    ("fmin", Float.min, 3); ("fmax", Float.max, 3);
    ("atan2", atan2, 70); ("fmod", Float.rem, 25);
  ]

(* ------------------------------------------------------------------ *)
(* printf *)

let string_of_value = function
  | Mem.VInt i -> string_of_int i
  | Mem.VFloat f -> Printf.sprintf "%g" f
  | Mem.VPtr _ -> "<ptr>"
  | Mem.VNull -> "<null>"

let decode_c_string (p : Mem.ptr) =
  match p.Mem.p_obj with
  | Mem.OInts a ->
    let buf = Buffer.create 16 in
    let rec go i =
      if i < Array.length a && a.(i) <> 0 then begin
        Buffer.add_char buf (Char.chr (a.(i) land 0xff));
        go (i + 1)
      end
    in
    go p.Mem.p_off;
    Buffer.contents buf
  | _ -> "<str>"

let remove_char s c = String.to_seq s |> Seq.filter (( <> ) c) |> String.of_seq

(* integer floor/ceil division, PluTo's floord/ceild *)
let floord a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let ceild a b = -floord (-a) b

let run_printf out fmt args =
  let n = String.length fmt in
  let args = ref args in
  let next_arg () =
    match !args with
    | [] -> Mem.VInt 0
    | a :: rest ->
      args := rest;
      a
  in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c = '%' && !i + 1 < n then begin
      (* scan flags/width/precision *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (match fmt.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | ' ' | '#' | 'l' -> true
           | _ -> false)
      do
        incr j
      done;
      if !j < n then begin
        let spec = String.sub fmt !i (!j - !i + 1) in
        let conv = fmt.[!j] in
        (match conv with
        | 'd' | 'i' ->
          let s = String.map (fun c -> if c = 'i' then 'd' else c) spec in
          let s = remove_char s 'l' in
          Buffer.add_string out
            (Printf.sprintf (Scanf.format_from_string s "%d") (Mem.to_int (next_arg ())))
        | 'f' | 'g' | 'e' ->
          let s = remove_char spec 'l' in
          Buffer.add_string out
            (Printf.sprintf (Scanf.format_from_string s "%f") (Mem.to_float (next_arg ())))
        | 'c' ->
          Buffer.add_char out (Char.chr (Mem.to_int (next_arg ()) land 0xff))
        | 's' -> (
          match next_arg () with
          | Mem.VPtr p -> Buffer.add_string out (decode_c_string p)
          | v -> Buffer.add_string out (string_of_value v))
        | '%' -> Buffer.add_char out '%'
        | _ -> Buffer.add_string out spec);
        i := !j + 1
      end
      else begin
        Buffer.add_char out c;
        incr i
      end
    end
    else begin
      Buffer.add_char out c;
      incr i
    end
  done

(* ------------------------------------------------------------------ *)
(* Value coercion to a declared type (C assignment semantics) *)

let coerce ty (v : Mem.value) : Mem.value =
  match ty with
  | Ast.Int | Ast.Char -> (
    match v with
    | Mem.VInt _ -> v
    | Mem.VFloat f -> Mem.VInt (int_of_float f)
    | Mem.VNull -> Mem.VInt 0
    | Mem.VPtr _ -> v)
  | Ast.Float | Ast.Double -> (
    match v with
    | Mem.VFloat _ -> v
    | Mem.VInt i -> Mem.VFloat (float_of_int i)
    | v -> v)
  | _ -> v

(* ------------------------------------------------------------------ *)
(* Call-overhead model: -O2 inlines small leaf functions. *)

(* rough static operation count of an expression *)
let expr_size (e : Ast.expr) = Ast.fold_expr (fun acc _ -> acc + 1) 0 e

let stmt_size (s : Ast.stmt) =
  Ast.fold_stmt ~stmt:(fun acc _ -> acc + 1) ~expr:(fun acc _ -> acc + 1) 0 s

let body_size (f : Ast.func) =
  match f.Ast.f_body with
  | None -> max_int
  | Some ss -> List.fold_left (fun acc s -> acc + stmt_size s) 0 ss

let has_control (f : Ast.func) =
  match f.Ast.f_body with
  | None -> true
  | Some ss ->
    List.exists
      (fun s ->
        Ast.fold_stmt
          ~stmt:(fun acc s ->
            acc
            ||
            match s.Ast.sdesc with
            | Ast.SFor _ | Ast.SWhile _ | Ast.SDoWhile _ | Ast.SIf _ -> true
            | _ -> false)
          ~expr:(fun acc _ -> acc)
          false s)
      ss

(** Cycles charged per call: tiny straight-line callees are treated as
    inlined by the optimizing backend; anything with loops or branches (or a
    big body) pays the real call overhead. *)
let call_overhead_cycles (f : Ast.func) =
  if (not (has_control f)) && body_size f <= 10 then 2 else 26

let _ = expr_size

(* ------------------------------------------------------------------ *)
(* Lvalues *)

type lval =
  | LSlot of int * Ast.ctype
  | LGlobal of Mem.value ref * int * Ast.ctype  (** cell, address, type *)
  | LMem of (frame -> Mem.ptr) * Ast.ctype

let lval_type = function LSlot (_, t) | LGlobal (_, _, t) | LMem (_, t) -> t

(* ------------------------------------------------------------------ *)
(* Expression compilation *)

let rec compile_expr cenv (e : Ast.expr) : (frame -> Mem.value) * Ast.ctype =
  let rt = cenv.rt in
  match e.Ast.edesc with
  | Ast.IntLit n ->
    let v = Mem.VInt n in
    ((fun _ -> v), Ast.Int)
  | Ast.FloatLit (f, single) ->
    let v = Mem.VFloat f in
    ((fun _ -> v), if single then Ast.Float else Ast.Double)
  | Ast.CharLit ch ->
    let v = Mem.VInt (Char.code ch) in
    ((fun _ -> v), Ast.Char)
  | Ast.StrLit s ->
    (* C string: int cells with a NUL terminator *)
    let p = Mem.alloc_ints rt.alloc (String.length s + 1) in
    (match p.Mem.p_obj with
    | Mem.OInts a -> String.iteri (fun i ch -> a.(i) <- Char.code ch) s
    | _ -> ());
    let p = { p with Mem.p_elem_bytes = 1 } in
    register_ptr_region rt.alloc "string" p;
    let v = Mem.VPtr p in
    ((fun _ -> v), Ast.ptr Ast.Char ~const:true)
  | Ast.Ident name -> (
    match lookup_local cenv name with
    | Some (slot, ty) -> (
      match slot_shadow cenv slot ty with
      | None -> ((fun fr -> fr.(slot)), ty)
      | Some (addr, bytes) ->
        (* a shared enclosing-scope scalar read inside a parallel loop: the
           value still comes from the register slot (no cost change), but
           the race detector must see the logical load *)
        let loc = Loc.to_string e.Ast.eloc in
        ( (fun fr ->
            log_access rt loc ~addr ~bytes ~write:false;
            fr.(slot)),
          ty ))
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (GScalar { cell; addr }, ty) ->
        (* the first read charges a load; afterwards the global lives in a
           register for this site (per execution stream) *)
        let memo = Cache.Memo.create ~streams:(n_streams rt) in
        let loc = Loc.to_string e.Ast.eloc in
        let bytes = scalar_bytes (resolve cenv ty) in
        ( (fun _ ->
            log_access rt loc ~addr ~bytes ~write:false;
            let ds = cur rt in
            if not (Cache.Memo.probe memo ~stream:ds.ds_slot addr) then begin
              bump_load ds.ds_counters;
              Cache.access ds.ds_cache addr
            end;
            !cell),
          ty )
      | Some (GArray { view }, ty) ->
        let v = Mem.VPtr view in
        ((fun _ -> v), ty)
      | None -> unsupported "unbound identifier %s" name))
  | Ast.Binop (op, a, b) -> compile_binop cenv e op a b
  | Ast.Unop (op, a) -> (
    let fa, ta = compile_expr cenv a in
    let ta = resolve cenv ta in
    match op with
    | Ast.Neg ->
      if is_floaty ta then
        ( (fun fr ->
            bump_fadd rt;
            Mem.VFloat (-.Mem.to_float (fa fr))),
          ta )
      else
        ( (fun fr ->
            bump_int rt;
            Mem.VInt (-Mem.to_int (fa fr))),
          Ast.Int )
    | Ast.LNot ->
      ( (fun fr ->
          bump_int rt;
          Mem.VInt (if Mem.truthy (fa fr) then 0 else 1)),
        Ast.Int )
    | Ast.BNot ->
      ( (fun fr ->
          bump_int rt;
          Mem.VInt (lnot (Mem.to_int (fa fr)))),
        Ast.Int ))
  | Ast.Assign (op, lhs, rhs) ->
    let run, ty = compile_assign cenv op lhs rhs in
    (run, ty)
  | Ast.Call (fname, args) -> compile_call cenv e.Ast.eloc fname args
  | Ast.Index _ | Ast.Deref _ -> (
    (* rvalue load through the lvalue path *)
    let lv = compile_lval cenv e in
    let ty = resolve cenv (lval_type lv) in
    match (lv, ty) with
    | LMem (addr, _), Ast.Array _ ->
      (* a view: no load, just the address *)
      ((fun fr -> Mem.VPtr (addr fr)), ty)
    | LMem (addr, _), _ ->
      let do_load = memo_load rt (Loc.to_string e.Ast.eloc) in
      ((fun fr -> do_load (addr fr)), ty)
    | (LSlot _ | LGlobal _), _ -> assert false)
  | Ast.AddrOf inner -> (
    let lv = compile_lval cenv inner in
    match lv with
    | LMem (addr, ty) -> ((fun fr -> Mem.VPtr (addr fr)), Ast.ptr ty)
    | LSlot _ | LGlobal _ -> unsupported "address-of a register variable")
  | Ast.Cast (ty, inner) -> (
    let ty = resolve cenv ty in
    (* allocation idiom: (T* ) malloc(n) *)
    match (ty, strip_casts inner) with
    | Ast.Ptr { elt; _ }, { Ast.edesc = Ast.Call (("malloc" | "calloc") as fn, args); _ }
      ->
      compile_malloc cenv fn elt args
    | _ ->
      let fi, _ti = compile_expr cenv inner in
      (match ty with
      | Ast.Int | Ast.Char ->
        ( (fun fr ->
            match fi fr with
            | Mem.VInt i -> Mem.VInt i
            | Mem.VFloat f -> Mem.VInt (int_of_float f)
            | v -> v),
          ty )
      | Ast.Float | Ast.Double ->
        ( (fun fr ->
            match fi fr with
            | Mem.VFloat f -> Mem.VFloat f
            | Mem.VInt i -> Mem.VFloat (float_of_int i)
            | v -> v),
          ty )
      | Ast.Ptr _ ->
        ( (fun fr -> match fi fr with Mem.VInt 0 -> Mem.VNull | v -> v),
          ty )
      | _ -> (fi, ty)))
  | Ast.Cond (cond, t, f) ->
    let fc, _ = compile_expr cenv cond in
    let ft, tt = compile_expr cenv t in
    let ff, _tf = compile_expr cenv f in
    ( (fun fr ->
        bump_branch rt;
        if Mem.truthy (fc fr) then ft fr else ff fr),
      tt )
  | Ast.SizeofType ty ->
    let v = Mem.VInt (type_bytes cenv ty) in
    ((fun _ -> v), Ast.Int)
  | Ast.SizeofExpr inner ->
    (* typeof only: no evaluation *)
    let _, ti = compile_expr cenv inner in
    let v = Mem.VInt (type_bytes cenv ti) in
    ((fun _ -> v), Ast.Int)
  | Ast.IncDec { pre; inc; arg } ->
    let lv = compile_lval cenv arg in
    let ty = resolve cenv (lval_type lv) in
    let delta = if inc then 1 else -1 in
    let apply old =
      match (ty, old) with
      | (Ast.Float | Ast.Double), v ->
        bump_fadd rt;
        Mem.VFloat (Mem.to_float v +. float_of_int delta)
      | Ast.Ptr _, Mem.VPtr p ->
        bump_int rt;
        Mem.VPtr (Mem.ptr_add p delta)
      | _, v ->
        bump_int rt;
        Mem.VInt (Mem.to_int v + delta)
    in
    let run =
      match lv with
      | LSlot (slot, _) -> (
        match slot_shadow cenv slot ty with
        | None ->
          fun fr ->
            let old = fr.(slot) in
            let nv = apply old in
            fr.(slot) <- nv;
            if pre then nv else old
        | Some (addr, bytes) ->
          let loc = Loc.to_string e.Ast.eloc in
          fun fr ->
            log_access rt loc ~addr ~bytes ~write:false;
            log_access rt loc ~addr ~bytes ~write:true;
            let old = fr.(slot) in
            let nv = apply old in
            fr.(slot) <- nv;
            if pre then nv else old)
      | LGlobal (cell, addr, gty) ->
        let loc = Loc.to_string e.Ast.eloc in
        let bytes = scalar_bytes (resolve cenv gty) in
        fun fr ->
          ignore fr;
          log_access rt loc ~addr ~bytes ~write:false;
          log_access rt loc ~addr ~bytes ~write:true;
          let ds = cur rt in
          bump_load ds.ds_counters;
          bump_store ds.ds_counters;
          Cache.access ds.ds_cache addr;
          let old = !cell in
          let nv = apply old in
          cell := nv;
          if pre then nv else old
      | LMem (faddr, _) ->
        let siteloc = Loc.to_string e.Ast.eloc in
        let do_load = memo_load rt siteloc and do_store = memo_store rt siteloc in
        fun fr ->
          let p = faddr fr in
          let old = do_load p in
          let nv = apply old in
          do_store p nv;
          if pre then nv else old
    in
    (run, ty)
  | Ast.Comma (a, b) ->
    let fa, _ = compile_expr cenv a in
    let fb, tb = compile_expr cenv b in
    ( (fun fr ->
        ignore (fa fr);
        fb fr),
      tb )
  | Ast.Member _ | Ast.Arrow _ ->
    unsupported "struct member access is not executable in this build"

and strip_casts (e : Ast.expr) =
  match e.Ast.edesc with Ast.Cast (_, inner) -> strip_casts inner | _ -> e

(* ------------------------------------------------------------------ *)

and compile_binop cenv e op a b =
  let rt = cenv.rt in
  let fa, ta = compile_expr cenv a in
  let fb, tb = compile_expr cenv b in
  let ta = resolve cenv ta and tb = resolve cenv tb in
  let arith = promote ta tb in
  let is_ptr t = match t with Ast.Ptr _ | Ast.Array _ -> true | _ -> false in
  match op with
  | Ast.Add when is_ptr ta || is_ptr tb ->
    let fp, fi, pty = if is_ptr ta then (fa, fb, ta) else (fb, fa, tb) in
    let _, stride, _ = subscript_info cenv pty in
    ( (fun fr ->
        bump_int rt;
        Mem.VPtr (Mem.ptr_add (Mem.to_ptr (fp fr)) (stride * Mem.to_int (fi fr)))),
      pty )
  | Ast.Sub when is_ptr ta && is_ptr tb ->
    ( (fun fr ->
        bump_int rt;
        Mem.VInt ((Mem.to_ptr (fa fr)).Mem.p_off - (Mem.to_ptr (fb fr)).Mem.p_off)),
      Ast.Int )
  | Ast.Sub when is_ptr ta ->
    let _, stride, _ = subscript_info cenv ta in
    ( (fun fr ->
        bump_int rt;
        Mem.VPtr (Mem.ptr_add (Mem.to_ptr (fa fr)) (-stride * Mem.to_int (fb fr)))),
      ta )
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    if is_floaty arith then begin
      let run =
        match op with
        | Ast.Add ->
          fun fr ->
            bump_fadd rt;
            Mem.VFloat (Mem.to_float (fa fr) +. Mem.to_float (fb fr))
        | Ast.Sub ->
          fun fr ->
            bump_fadd rt;
            Mem.VFloat (Mem.to_float (fa fr) -. Mem.to_float (fb fr))
        | Ast.Mul ->
          fun fr ->
            bump_fmul rt;
            Mem.VFloat (Mem.to_float (fa fr) *. Mem.to_float (fb fr))
        | Ast.Div ->
          fun fr ->
            bump_fdiv rt;
            Mem.VFloat (Mem.to_float (fa fr) /. Mem.to_float (fb fr))
        | _ -> assert false
      in
      (run, arith)
    end
    else begin
      let run =
        match op with
        | Ast.Add ->
          fun fr ->
            bump_int rt;
            Mem.VInt (Mem.to_int (fa fr) + Mem.to_int (fb fr))
        | Ast.Sub ->
          fun fr ->
            bump_int rt;
            Mem.VInt (Mem.to_int (fa fr) - Mem.to_int (fb fr))
        | Ast.Mul ->
          fun fr ->
            bump_int rt;
            Mem.VInt (Mem.to_int (fa fr) * Mem.to_int (fb fr))
        | Ast.Div ->
          fun fr ->
            bump_int_n rt 20;
            let d = Mem.to_int (fb fr) in
            if d = 0 then Mem.fault "integer division by zero at %s" (Loc.to_string e.Ast.eloc)
            else Mem.VInt (Mem.to_int (fa fr) / d)
        | _ -> assert false
      in
      (run, Ast.Int)
    end
  | Ast.Mod ->
    ( (fun fr ->
        bump_int_n rt 20;
        let d = Mem.to_int (fb fr) in
        if d = 0 then Mem.fault "integer modulo by zero at %s" (Loc.to_string e.Ast.eloc)
        else Mem.VInt (Mem.to_int (fa fr) mod d)),
      Ast.Int )
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    let cmp_float f =
      fun fr ->
        bump_int rt;
        Mem.VInt (if f (Mem.to_float (fa fr)) (Mem.to_float (fb fr)) then 1 else 0)
    in
    let cmp_int f =
      fun fr ->
        bump_int rt;
        Mem.VInt (if f (Mem.to_int (fa fr)) (Mem.to_int (fb fr)) then 1 else 0)
    in
    let run =
      if is_floaty arith && not (is_ptr ta || is_ptr tb) then
        match op with
        | Ast.Lt -> cmp_float ( < )
        | Ast.Le -> cmp_float ( <= )
        | Ast.Gt -> cmp_float ( > )
        | Ast.Ge -> cmp_float ( >= )
        | Ast.Eq -> cmp_float ( = )
        | Ast.Ne -> cmp_float ( <> )
        | _ -> assert false
      else if is_ptr ta || is_ptr tb then
        (* pointer comparisons: by synthetic address; null compares as 0 *)
        let addr v =
          match v with
          | Mem.VPtr p -> Mem.addr_of p
          | Mem.VNull -> 0
          | v -> Mem.to_int v
        in
        let f =
          match op with
          | Ast.Lt -> ( < )
          | Ast.Le -> ( <= )
          | Ast.Gt -> ( > )
          | Ast.Ge -> ( >= )
          | Ast.Eq -> ( = )
          | Ast.Ne -> ( <> )
          | _ -> assert false
        in
        fun fr ->
          bump_int rt;
          Mem.VInt (if f (addr (fa fr)) (addr (fb fr)) then 1 else 0)
      else
        match op with
        | Ast.Lt -> cmp_int ( < )
        | Ast.Le -> cmp_int ( <= )
        | Ast.Gt -> cmp_int ( > )
        | Ast.Ge -> cmp_int ( >= )
        | Ast.Eq -> cmp_int ( = )
        | Ast.Ne -> cmp_int ( <> )
        | _ -> assert false
    in
    (run, Ast.Int)
  | Ast.LAnd ->
    ( (fun fr ->
        bump_branch rt;
        if Mem.truthy (fa fr) then Mem.VInt (if Mem.truthy (fb fr) then 1 else 0)
        else Mem.VInt 0),
      Ast.Int )
  | Ast.LOr ->
    ( (fun fr ->
        bump_branch rt;
        if Mem.truthy (fa fr) then Mem.VInt 1
        else Mem.VInt (if Mem.truthy (fb fr) then 1 else 0)),
      Ast.Int )
  | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
    let f =
      match op with
      | Ast.BAnd -> ( land )
      | Ast.BOr -> ( lor )
      | Ast.BXor -> ( lxor )
      | Ast.Shl -> ( lsl )
      | Ast.Shr -> ( asr )
      | _ -> assert false
    in
    ( (fun fr ->
        bump_int rt;
        Mem.VInt (f (Mem.to_int (fa fr)) (Mem.to_int (fb fr)))),
      Ast.Int )

(* ------------------------------------------------------------------ *)

and compile_lval cenv (e : Ast.expr) : lval =
  let rt = cenv.rt in
  match e.Ast.edesc with
  | Ast.Ident name -> (
    match lookup_local cenv name with
    | Some (slot, ty) -> LSlot (slot, ty)
    | None -> (
      match Hashtbl.find_opt cenv.globals name with
      | Some (GScalar { cell; addr }, ty) -> LGlobal (cell, addr, ty)
      | Some (GArray { view }, ty) ->
        LMem ((fun _ -> view), ty)
      | None -> unsupported "unbound identifier %s" name))
  | Ast.Index (base, idx) -> (
    let fb, tb = compile_expr cenv base in
    let fi, _ = compile_expr cenv idx in
    let elt, stride, is_view = subscript_info cenv tb in
    if is_view then
      LMem
        ( (fun fr ->
            bump_int rt;
            Mem.ptr_add (Mem.to_ptr (fb fr)) (stride * Mem.to_int (fi fr))),
          elt )
    else
      LMem
        ( (fun fr ->
            bump_int rt;
            Mem.ptr_add (Mem.to_ptr (fb fr)) (Mem.to_int (fi fr))),
          elt ))
  | Ast.Deref inner -> (
    let fi, ti = compile_expr cenv inner in
    let elt, _, _ = subscript_info cenv ti in
    LMem ((fun fr -> Mem.to_ptr (fi fr)), elt))
  | Ast.Cast (_, inner) -> compile_lval cenv inner
  | _ -> unsupported "unsupported lvalue: %s" (Ast_printer.expr_to_string e)

(* ------------------------------------------------------------------ *)

and compile_assign cenv op lhs rhs =
  let rt = cenv.rt in
  let lv = compile_lval cenv lhs in
  let ty = resolve cenv (lval_type lv) in
  let frhs, _trhs = compile_expr cenv rhs in
  let combine old rv =
    match op with
    | Ast.OpAssign -> coerce ty rv
    | Ast.OpAddAssign | Ast.OpSubAssign | Ast.OpMulAssign | Ast.OpDivAssign ->
      if is_floaty ty then begin
        (match op with
        | Ast.OpMulAssign | Ast.OpDivAssign -> bump_fmul rt
        | _ -> bump_fadd rt);
        let a = Mem.to_float old and b = Mem.to_float rv in
        Mem.VFloat
          (match op with
          | Ast.OpAddAssign -> a +. b
          | Ast.OpSubAssign -> a -. b
          | Ast.OpMulAssign -> a *. b
          | Ast.OpDivAssign -> a /. b
          | _ -> assert false)
      end
      else begin
        bump_int rt;
        let a = Mem.to_int old and b = Mem.to_int rv in
        Mem.VInt
          (match op with
          | Ast.OpAddAssign -> (
            match (ty, old) with
            | Ast.Ptr _, Mem.VPtr p ->
              ignore a;
              ignore p;
              0 (* handled below *)
            | _ -> a + b)
          | Ast.OpSubAssign -> a - b
          | Ast.OpMulAssign -> a * b
          | Ast.OpDivAssign -> if b = 0 then Mem.fault "division by zero" else a / b
          | _ -> assert false)
      end
    | Ast.OpModAssign ->
      bump_int rt;
      let b = Mem.to_int rv in
      if b = 0 then Mem.fault "modulo by zero"
      else Mem.VInt (Mem.to_int old mod b)
  in
  (* pointer += int needs special handling *)
  let combine old rv =
    match (ty, old, op) with
    | Ast.Ptr _, Mem.VPtr p, Ast.OpAddAssign ->
      bump_int rt;
      Mem.VPtr (Mem.ptr_add p (Mem.to_int rv))
    | Ast.Ptr _, Mem.VPtr p, Ast.OpSubAssign ->
      bump_int rt;
      Mem.VPtr (Mem.ptr_add p (-Mem.to_int rv))
    | _ -> combine old rv
  in
  let run =
    match lv with
    | LSlot (slot, _) -> (
      match slot_shadow cenv slot ty with
      | None ->
        if op = Ast.OpAssign then fun fr ->
          let v = coerce ty (frhs fr) in
          fr.(slot) <- v;
          v
        else fun fr ->
          let v = combine fr.(slot) (frhs fr) in
          fr.(slot) <- v;
          v
      | Some (addr, bytes) ->
        let loc = Loc.to_string lhs.Ast.eloc in
        if op = Ast.OpAssign then fun fr ->
          let v = coerce ty (frhs fr) in
          log_access rt loc ~addr ~bytes ~write:true;
          fr.(slot) <- v;
          v
        else fun fr ->
          log_access rt loc ~addr ~bytes ~write:false;
          let v = combine fr.(slot) (frhs fr) in
          log_access rt loc ~addr ~bytes ~write:true;
          fr.(slot) <- v;
          v)
    | LGlobal (cell, addr, gty) ->
      let loc = Loc.to_string lhs.Ast.eloc in
      let bytes = scalar_bytes (resolve cenv gty) in
      if op = Ast.OpAssign then fun fr ->
        log_access rt loc ~addr ~bytes ~write:true;
        let ds = cur rt in
        bump_store ds.ds_counters;
        Cache.access ds.ds_cache addr;
        let v = coerce ty (frhs fr) in
        cell := v;
        v
      else fun fr ->
        log_access rt loc ~addr ~bytes ~write:false;
        let ds = cur rt in
        bump_load ds.ds_counters;
        bump_store ds.ds_counters;
        Cache.access ds.ds_cache addr;
        let v = combine !cell (frhs fr) in
        log_access rt loc ~addr ~bytes ~write:true;
        cell := v;
        v
    | LMem (faddr, _) ->
      let siteloc = Loc.to_string lhs.Ast.eloc in
      if op = Ast.OpAssign then begin
        let do_store = memo_store rt siteloc in
        fun fr ->
          let p = faddr fr in
          let v = coerce ty (frhs fr) in
          do_store p v;
          v
      end
      else begin
        let do_load = memo_load rt siteloc and do_store = memo_store rt siteloc in
        fun fr ->
          let p = faddr fr in
          let old = do_load p in
          let v = combine old (frhs fr) in
          do_store p v;
          v
      end
  in
  (run, ty)

(* ------------------------------------------------------------------ *)

and compile_malloc cenv fn elt args =
  let rt = cenv.rt in
  let elt = resolve cenv elt in
  let size_expr =
    match (fn, args) with
    | "malloc", [ sz ] -> compile_expr cenv sz |> fst
    | "calloc", [ n; sz ] ->
      let fn_, _ = compile_expr cenv n and fs, _ = compile_expr cenv sz in
      fun fr -> Mem.VInt (Mem.to_int (fn_ fr) * Mem.to_int (fs fr))
    | _ -> unsupported "bad allocation call"
  in
  let run fr =
    let bytes = Mem.to_int (size_expr fr) in
    let counters = (cur rt).ds_counters in
    counters.Cost.builtin_calls <- counters.Cost.builtin_calls + 1;
    counters.Cost.malloc_bytes <- counters.Cost.malloc_bytes + bytes;
    (* allocator + first-touch/page-zeroing cost, the effect behind the
       paper's parallelized initialization loop (Fig. 3) *)
    counters.Cost.extra_cycles <- counters.Cost.extra_cycles + 150 + (bytes / 8);
    let p =
      match elt with
      | Ast.Float -> Mem.alloc_floats rt.alloc ~elem_bytes:4 (max 1 (bytes / 4))
      | Ast.Double -> Mem.alloc_floats rt.alloc ~elem_bytes:8 (max 1 (bytes / 8))
      | Ast.Int -> Mem.alloc_ints rt.alloc (max 1 (bytes / 4))
      | Ast.Char -> { (Mem.alloc_ints rt.alloc (max 1 bytes)) with Mem.p_elem_bytes = 1 }
      | Ast.Ptr _ -> Mem.alloc_ptrs rt.alloc (max 1 (bytes / 8))
      | _ -> Mem.alloc_floats rt.alloc ~elem_bytes:8 (max 1 (bytes / 8))
    in
    register_ptr_region rt.alloc "heap" p;
    Mem.VPtr p
  in
  (run, Ast.ptr elt)

and compile_call cenv loc fname args =
  let rt = cenv.rt in
  match fname with
  | "malloc" | "calloc" ->
    (* uncast allocation: treat as bytes of doubles *)
    compile_malloc cenv fname Ast.Double args
  | "free" ->
    let fargs = List.map (fun a -> fst (compile_expr cenv a)) args in
    ( (fun fr ->
        List.iter (fun f -> ignore (f fr)) fargs;
        bump_builtin rt 60;
        Mem.VNull),
      Ast.Void )
  | "printf" -> (
    match args with
    | fmt_e :: rest ->
      let frest = List.map (fun a -> fst (compile_expr cenv a)) rest in
      let ffmt, _ = compile_expr cenv fmt_e in
      ( (fun fr ->
          bump_builtin rt 400;
          let fmt =
            match ffmt fr with Mem.VPtr p -> decode_c_string p | v -> string_of_value v
          in
          run_printf (cur rt).ds_out fmt (List.map (fun f -> f fr) frest);
          Mem.VInt 0),
        Ast.Int )
    | [] -> unsupported "printf with no arguments")
  | "exit" ->
    let fargs = List.map (fun a -> fst (compile_expr cenv a)) args in
    ( (fun fr ->
        let code = match fargs with f :: _ -> Mem.to_int (f fr) | [] -> 0 in
        raise (Return_v (Mem.VInt code))),
      Ast.Void )
  | "__max" | "__min" -> (
    match List.map (fun a -> compile_expr cenv a) args with
    | [ (fa, _); (fb, _) ] ->
      let pick_max = fname = "__max" in
      ( (fun fr ->
          bump_int rt;
          let a = Mem.to_int (fa fr) and b = Mem.to_int (fb fr) in
          Mem.VInt (if pick_max then max a b else min a b)),
        Ast.Int )
    | _ -> unsupported "%s expects two arguments" fname)
  | "__ceild" | "__floord" -> (
    match List.map (fun a -> compile_expr cenv a) args with
    | [ (fa, _); (fb, _) ] ->
      let ceil_mode = fname = "__ceild" in
      ( (fun fr ->
          bump_int_n rt 20;
          let a = Mem.to_int (fa fr) and b = Mem.to_int (fb fr) in
          if b = 0 then Mem.fault "division by zero in %s" fname
          else Mem.VInt (if ceil_mode then ceild a b else floord a b)),
        Ast.Int )
    | _ -> unsupported "%s expects two arguments" fname)
  | "abs" -> (
    match List.map (fun a -> fst (compile_expr cenv a)) args with
    | [ fa ] ->
      ( (fun fr ->
          bump_int rt;
          Mem.VInt (abs (Mem.to_int (fa fr)))),
        Ast.Int )
    | _ -> unsupported "abs expects one argument")
  | _ -> (
    match List.find_opt (fun (n, _, _) -> n = fname) builtin_math with
    | Some (_, f, weight) -> (
      match List.map (fun a -> fst (compile_expr cenv a)) args with
      | [ fa ] ->
        let single = String.length fname > 0 && fname.[String.length fname - 1] = 'f' in
        ( (fun fr ->
            bump_builtin rt weight;
            Mem.VFloat (f (Mem.to_float (fa fr)))),
          if single then Ast.Float else Ast.Double )
      | _ -> unsupported "%s expects one argument" fname)
    | None -> (
      match List.find_opt (fun (n, _, _) -> n = fname) builtin_math2 with
      | Some (_, f, weight) -> (
        match List.map (fun a -> fst (compile_expr cenv a)) args with
        | [ fa; fb ] ->
          ( (fun fr ->
              bump_builtin rt weight;
              Mem.VFloat (f (Mem.to_float (fa fr)) (Mem.to_float (fb fr)))),
            Ast.Double )
        | _ -> unsupported "%s expects two arguments" fname)
      | None -> (
        (* user function *)
        match Hashtbl.find_opt cenv.funcs fname with
        | Some entry ->
          let fargs = Array.of_list (List.map (fun a -> fst (compile_expr cenv a)) args) in
          let n = Array.length fargs in
          (* a -O2-style backend inlines tiny leaf callees; such calls cost
             almost nothing, while calls to functions with control flow keep
             the full frame set-up cost (cf. the perf comparison in paper
             §4.3.2, where the out-of-line stencil doubles the dynamic
             instruction count) *)
          let overhead = call_overhead_cycles entry.fe_def in
          ( (fun fr ->
              bump_user_call rt overhead;
              let argv = Array.make (max n 1) Mem.VNull in
              for i = 0 to n - 1 do
                argv.(i) <- fargs.(i) fr
              done;
              match entry.fe_run with
              | Some run -> run argv
              | None -> Mem.fault "call to undefined function %s" fname),
            resolve cenv entry.fe_def.Ast.f_ret )
        | None ->
          unsupported "call to unknown function %s at %s" fname (Loc.to_string loc))))

(* ------------------------------------------------------------------ *)
(* Auto-vectorization eligibility (ICC model)

   A loop is considered auto-vectorizable when it is innermost, its body is
   straight-line arithmetic over array elements (no branches, no stores
   through unanalyzable lvalues), its bounds contain no __min/__max/__ceild
   helper calls (complex PluTo-generated bounds inhibit the vectorizer), and
   any user calls target leaf functions whose body is a single return of
   call-free arithmetic (which the backend trivially inlines, e.g. [mult] in
   the paper's dot product). *)

(* a callee the vectorizer handles after inlining: single return of
   call-free, memory-free arithmetic (scalar params only); functions that
   read arrays (like the heat stencil) leave strided/unaligned accesses the
   vectorizer does not profit from (paper Â§4.3.2) *)
let is_vectorizable_leaf (funcs : (string, func_entry) Hashtbl.t) name =
  match Hashtbl.find_opt funcs name with
  | Some { fe_def = { f_body = Some [ { Ast.sdesc = Ast.SReturn (Some e); _ } ]; _ }; _ }
    ->
    Ast.calls_in_expr e = []
    && not
         (Ast.fold_expr
            (fun acc x ->
              acc
              || match x.Ast.edesc with Ast.Index _ | Ast.Deref _ -> true | _ -> false)
            false e)
  | _ -> false

(* indirect addressing (a gather like x[cols[k]]) defeats vectorization on
   the modeled hardware *)
let expr_has_gather (e : Ast.expr) =
  Ast.fold_expr
    (fun acc x ->
      acc
      ||
      match x.Ast.edesc with
      | Ast.Index (_, idx) ->
        Ast.fold_expr
          (fun a y ->
            a || match y.Ast.edesc with Ast.Index _ | Ast.Deref _ -> true | _ -> false)
          false idx
      | _ -> false)
    false e

let rec stmt_has_control (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.SIf _ | Ast.SWhile _ | Ast.SDoWhile _ | Ast.SFor _ | Ast.SBreak | Ast.SContinue ->
    true
  | Ast.SBlock ss -> List.exists stmt_has_control ss
  | Ast.SExpr _ | Ast.SDecl _ | Ast.SReturn _ | Ast.SPragma _ -> false

let expr_has_cond (e : Ast.expr) =
  Ast.fold_expr
    (fun acc e ->
      acc
      || match e.Ast.edesc with Ast.Cond _ | Ast.Binop ((Ast.LAnd | Ast.LOr), _, _) -> true | _ -> false)
    false e

let bounds_simple cond =
  match cond with
  | None -> true
  | Some e ->
    not
      (List.exists
         (fun f -> List.mem f [ "__min"; "__max"; "__ceild"; "__floord" ])
         (Ast.calls_in_expr e))

let autovec_eligible funcs (init : Ast.for_init option) cond (body : Ast.stmt) =
  let body_stmts = match body.Ast.sdesc with Ast.SBlock ss -> ss | _ -> [ body ] in
  ignore init;
  bounds_simple cond
  && (not (stmt_has_control body))
  && List.for_all
       (fun st ->
         match st.Ast.sdesc with
         | Ast.SExpr e ->
           (not (expr_has_cond e))
           && (not (expr_has_gather e))
           && List.for_all
                (fun f ->
                  is_vectorizable_leaf funcs f
                  || List.exists (fun (n, _, _) -> n = f) builtin_math
                  || List.exists (fun (n, _, _) -> n = f) builtin_math2)
                (Ast.calls_in_expr e)
         | Ast.SPragma _ -> true
         | _ -> false)
       body_stmts

(* ------------------------------------------------------------------ *)
(* Statement compilation *)

type stmt_code = frame -> unit

let nop_stmt : stmt_code = fun _ -> ()

(* ------------------------------------------------------------------ *)
(* Loop-bound hoisting: an optimizing backend evaluates a loop-invariant
   bound expression once, not per iteration.  A bound like
   [__min(ub, t1t + 31)] is invariant when none of its variables is
   assigned in the loop body or step and it calls only the pure bound
   helpers. *)

let idents_of_expr e =
  Ast.fold_expr
    (fun acc x -> match x.Ast.edesc with Ast.Ident n -> n :: acc | _ -> acc)
    [] e

let bound_helpers = [ "__min"; "__max"; "__ceild"; "__floord" ]

let mutated_in_stmt s =
  Ast.fold_stmt
    ~stmt:(fun acc _ -> acc)
    ~expr:(fun acc e ->
      match e.Ast.edesc with
      | Ast.Assign (_, { edesc = Ast.Ident n; _ }, _) -> n :: acc
      | Ast.IncDec { arg = { edesc = Ast.Ident n; _ }; _ } -> n :: acc
      | _ -> acc)
    [] s

let mutated_in_expr e =
  Ast.fold_expr
    (fun acc x ->
      match x.Ast.edesc with
      | Ast.Assign (_, { edesc = Ast.Ident n; _ }, _) -> n :: acc
      | Ast.IncDec { arg = { edesc = Ast.Ident n; _ }; _ } -> n :: acc
      | _ -> acc)
    [] e

(* [Some (iter_expr, bound_expr, strict)] when the condition is
   [iter < bound] / [iter <= bound] with a bound invariant in the loop. *)
let hoistable_bound cond step body =
  match cond with
  | Some { Ast.edesc = Ast.Binop ((Ast.Lt | Ast.Le) as op, lhs, bound); _ } ->
    let mutated =
      mutated_in_stmt body
      @ (match step with Some e -> mutated_in_expr e | None -> [])
      @ idents_of_expr lhs
    in
    let invariant =
      List.for_all (fun v -> not (List.mem v mutated)) (idents_of_expr bound)
      && List.for_all (fun f -> List.mem f bound_helpers) (Ast.calls_in_expr bound)
    in
    if invariant then Some (lhs, bound, op = Ast.Lt) else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parallel dispatch of [#pragma omp parallel for] over the domain pool.

   The dispatcher handles exactly the canonical worksharing shape OpenMP
   requires (and the shape PluTo emits): one int induction variable in a
   local slot, initialized by the loop init; an invariant, side-effect-free
   upper bound [i < b] / [i <= b]; a constant positive stride
   [i++ / i += c / i = i + c]; and a body that cannot escape the loop (no
   return, no [exit] — even transitively through calls — and no break
   binding to the omp loop) nor mutate enclosing-scope register variables
   (each chunk runs on a private copy of the frame, OpenMP's privatization;
   a mutation of a shared register scalar could not be merged back).  Loops
   outside this shape fall back to the sequential recording path, which is
   always semantically safe. *)

(** Recognized [reduction(op:...)] operators. *)
type red_op = Rplus | Rtimes | Rmax

(** One classified accumulator of a [reduction(...)] clause: a local scalar
    slot whose every use in the body is an [op]-shaped update.  Chunks run
    it on identity-initialized private copies; the join folds the partials
    back in ascending chunk order (see [exec_parallel]). *)
type omp_red = {
  rd_slot : int;  (** frame slot of the accumulator *)
  rd_op : red_op;
  rd_floaty : bool;  (** float/double vs int/char arithmetic *)
}

type omp_canon = {
  oc_slot : int;  (** frame slot of the induction variable *)
  oc_bound : frame -> Mem.value;  (** the invariant bound, compiled *)
  oc_strict : bool;  (** [<] vs [<=] *)
  oc_stride : int;  (** positive *)
  oc_reds : omp_red list;  (** classified reduction accumulators *)
}

let red_op_of_string = function
  | "+" -> Some Rplus
  | "*" -> Some Rtimes
  | "max" -> Some Rmax
  | _ -> None

let red_identity rd =
  match (rd.rd_op, rd.rd_floaty) with
  | Rplus, true -> Mem.VFloat 0.0
  | Rplus, false -> Mem.VInt 0
  | Rtimes, true -> Mem.VFloat 1.0
  | Rtimes, false -> Mem.VInt 1
  | Rmax, true -> Mem.VFloat neg_infinity
  | Rmax, false -> Mem.VInt min_int

let red_combine rd a b =
  if rd.rd_floaty then
    let x = Mem.to_float a and y = Mem.to_float b in
    Mem.VFloat
      (match rd.rd_op with
      | Rplus -> x +. y
      | Rtimes -> x *. y
      | Rmax -> Float.max x y)
  else
    let x = Mem.to_int a and y = Mem.to_int b in
    Mem.VInt
      (match rd.rd_op with Rplus -> x + y | Rtimes -> x * y | Rmax -> max x y)

(* Does the accumulator [name] appear anywhere in [e]? *)
let expr_uses name e =
  Ast.fold_expr
    (fun acc x ->
      acc || match x.Ast.edesc with Ast.Ident n -> n = name | _ -> false)
    false e

(* An [op]-shaped whole-statement update of [name]:
   [s += e] / [s = s + e] / [s = e + s] for [+] (and the [*] analogues),
   [s = fmax(s, e)] / [s = __max(s, e)] (either argument order) for [max] —
   with [name] appearing nowhere inside [e], so identity-seeded private
   partials compose exactly. *)
let red_update_ok name op (e : Ast.expr) =
  let is_acc x = match x.Ast.edesc with Ast.Ident n -> n = name | _ -> false in
  let one_side a b = (is_acc a && not (expr_uses name b)) || (is_acc b && not (expr_uses name a)) in
  match (e.Ast.edesc, op) with
  | Ast.Assign (Ast.OpAddAssign, l, r), Rplus -> is_acc l && not (expr_uses name r)
  | Ast.Assign (Ast.OpMulAssign, l, r), Rtimes -> is_acc l && not (expr_uses name r)
  | Ast.Assign (Ast.OpAssign, l, { Ast.edesc = Ast.Binop (Ast.Add, a, b); _ }), Rplus ->
    is_acc l && one_side a b
  | Ast.Assign (Ast.OpAssign, l, { Ast.edesc = Ast.Binop (Ast.Mul, a, b); _ }), Rtimes ->
    is_acc l && one_side a b
  | Ast.Assign (Ast.OpAssign, l, { Ast.edesc = Ast.Call (("fmax" | "__max"), [ a; b ]); _ }), Rmax ->
    is_acc l && one_side a b
  | _ -> false

(* Every occurrence of the accumulator in the loop body must be inside a
   valid update statement (a conditional update is fine — skipped updates
   contribute the identity); any other read or write of it, or a shadowing
   redeclaration, disqualifies the clause: a privatized partial would then
   be observable mid-loop and the merged result could differ from the
   sequential left fold. *)
let rec red_body_ok name op (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.SExpr e -> red_update_ok name op e || not (expr_uses name e)
  | Ast.SBlock ss -> List.for_all (red_body_ok name op) ss
  | Ast.SIf (c, a, b) ->
    (not (expr_uses name c))
    && red_body_ok name op a
    && (match b with Some b -> red_body_ok name op b | None -> true)
  | Ast.SFor (init, c, st, b) ->
    (match init with
    | Some (Ast.FInitExpr e) -> not (expr_uses name e)
    | Some (Ast.FInitDecl { Ast.d_name; d_init; _ }) ->
      d_name <> name
      && (match d_init with Some e -> not (expr_uses name e) | None -> true)
    | None -> true)
    && (match c with Some e -> not (expr_uses name e) | None -> true)
    && (match st with Some e -> not (expr_uses name e) | None -> true)
    && red_body_ok name op b
  | Ast.SWhile (c, b) | Ast.SDoWhile (b, c) ->
    (not (expr_uses name c)) && red_body_ok name op b
  | Ast.SDecl { Ast.d_name; d_init; _ } ->
    d_name <> name
    && (match d_init with Some e -> not (expr_uses name e) | None -> true)
  | Ast.SReturn (Some e) -> not (expr_uses name e)
  | Ast.SPragma _ | Ast.SReturn None | Ast.SBreak | Ast.SContinue -> true

let stmt_has_return s =
  Ast.fold_stmt
    ~stmt:(fun acc s ->
      acc || match s.Ast.sdesc with Ast.SReturn _ -> true | _ -> false)
    ~expr:(fun acc _ -> acc)
    false s

(* a break that would bind to the omp loop itself (breaks inside nested
   loops bind to those loops and are fine) *)
let rec stmt_has_toplevel_break s =
  match s.Ast.sdesc with
  | Ast.SBreak -> true
  | Ast.SBlock ss -> List.exists stmt_has_toplevel_break ss
  | Ast.SIf (_, a, b) ->
    stmt_has_toplevel_break a
    || (match b with Some b -> stmt_has_toplevel_break b | None -> false)
  | _ -> false

let calls_in_stmt s =
  Ast.fold_stmt
    ~stmt:(fun acc _ -> acc)
    ~expr:(fun acc e ->
      match e.Ast.edesc with Ast.Call (f, _) -> f :: acc | _ -> acc)
    [] s

(* may the body reach exit(), transitively through user calls?  exit unwinds
   the whole program (Return_v past the loop), which a parallel region
   cannot reproduce faithfully. *)
let body_may_exit cenv body =
  let visited = Hashtbl.create 8 in
  let rec go_calls fs =
    List.exists
      (fun f ->
        f = "exit"
        ||
        match Hashtbl.find_opt cenv.funcs f with
        | Some { fe_def = { Ast.f_body = Some ss; _ }; _ }
          when not (Hashtbl.mem visited f) ->
          Hashtbl.replace visited f ();
          List.exists (fun s -> go_calls (calls_in_stmt s)) ss
        | _ -> false)
      fs
  in
  go_calls (calls_in_stmt body)

(* the bound is evaluated once, outside the recorded loop: it must be free
   of memory effects so that one evaluation on the master is equivalent to
   the sequential hoisted evaluation *)
let rec side_effect_free_bound (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.Ident _ -> true
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) ->
    side_effect_free_bound a && side_effect_free_bound b
  | Ast.Unop (Ast.Neg, a) -> side_effect_free_bound a
  | Ast.Call (f, args) when List.mem f bound_helpers ->
    List.for_all side_effect_free_bound args
  | _ -> false

(* One executed chunk of a parallel loop: contiguous iteration indices
   [ck_lo, ck_lo + |ck_iters|), its captured output and its per-iteration
   cost snapshots.  Chunks are disjoint and cover the iteration space, so
   sorting by [ck_lo] recovers exactly the sequential interleaving. *)
type chunk_rec = {
  ck_lo : int;
  ck_out : Buffer.t;
  ck_iters : Cost.t list;
  ck_reds : Mem.value list;
      (** final values of the chunk's identity-seeded private reduction
          accumulators, in [oc_reds] order *)
}

let exec_parallel rt pool (sched : Trace.sched_kind) (cn : omp_canon)
    (fbody : stmt_code) (finit : stmt_code) (fr : frame) =
  let m = master rt in
  (* fork: close the running sequential segment *)
  rt.segments <- Trace.Seq (Cost.diff m.ds_counters rt.seg_start) :: rt.segments;
  rt.in_parallel <- true;
  (* loop setup runs once on the master stream, like the sequential hoisted
     entry: the init (with any side effects, exactly once) and the invariant
     bound *)
  finit fr;
  let lo = Mem.to_int fr.(cn.oc_slot) in
  let hi_incl =
    let b = Mem.to_int (cn.oc_bound fr) in
    if cn.oc_strict then b - 1 else b
  in
  let stride = cn.oc_stride in
  let n = if hi_incl < lo then 0 else ((hi_incl - lo) / stride) + 1 in
  (* loop-entry branch + final failing comparison, charged to the master as
     in the sequential path *)
  bump_branch rt;
  bump_int rt;
  let workers = min (Runtime.Pool.size pool) (max 1 n) in
  let results : chunk_rec list array = Array.make workers [] in
  let starts = Array.map (fun ds -> Cost.copy ds.ds_counters) rt.states in
  (* execute iteration indices [lo_idx, hi_idx) into a private buffer; the
     per-iteration snapshots mirror the sequential recording loop (body +
     step + back-branch inside the snapshot, comparison outside) *)
  let run_chunk ds recs lo_idx hi_idx =
    let buf = Buffer.create 64 in
    ds.ds_out <- buf;
    let fr' = Array.copy fr in
    (* reduction accumulators start each chunk at the operator identity:
       the chunk computes a pure partial, merged back at the join *)
    List.iter (fun rd -> fr'.(rd.rd_slot) <- red_identity rd) cn.oc_reds;
    let iters = ref [] in
    for k = lo_idx to hi_idx - 1 do
      bump_int rt;
      let snap = Cost.copy ds.ds_counters in
      fr'.(cn.oc_slot) <- Mem.VInt (lo + (k * stride));
      (try fbody fr' with Continue_e -> ());
      bump_int rt;
      bump_branch rt;
      iters := Cost.diff ds.ds_counters snap :: !iters
    done;
    recs :=
      {
        ck_lo = lo_idx;
        ck_out = buf;
        ck_iters = List.rev !iters;
        ck_reds = List.map (fun rd -> fr'.(rd.rd_slot)) cn.oc_reds;
      }
      :: !recs
  in
  let jobs =
    match sched with
    | Trace.Static | Trace.Static_chunk _ ->
      let sched' =
        match sched with
        | Trace.Static -> Runtime.Par_loop.Static
        | Trace.Static_chunk c -> Runtime.Par_loop.Static_chunk c
        | Trace.Dynamic c -> Runtime.Par_loop.Dynamic c
      in
      let chunks = Runtime.Par_loop.chunk_plan sched' ~workers ~lo:0 ~hi:n in
      List.init workers (fun w ->
          fun () ->
            let ds = rt.states.(w + 1) in
            Domain.DLS.set rt.dls ds;
            let recs = ref [] in
            List.iter (fun (a, b) -> run_chunk ds recs a b) chunks.(w);
            results.(w) <- List.rev !recs)
    | Trace.Dynamic chunk ->
      let chunk = max 1 chunk in
      let next = Atomic.make 0 in
      List.init workers (fun w ->
          fun () ->
            let ds = rt.states.(w + 1) in
            Domain.DLS.set rt.dls ds;
            let recs = ref [] in
            let rec go () =
              let start = Atomic.fetch_and_add next chunk in
              if start < n then begin
                run_chunk ds recs start (min n (start + chunk));
                go ()
              end
            in
            go ();
            results.(w) <- List.rev !recs)
  in
  let finish () =
    Domain.DLS.set rt.dls m;
    rt.in_parallel <- false
  in
  (try Runtime.Pool.run pool jobs
   with exn ->
     (* a faulting iteration: partial worker output is dropped (the program
        is failing anyway); leave the profile state consistent and re-raise
        toward run_main *)
     finish ();
     rt.seg_start <- Cost.copy m.ds_counters;
     raise exn);
  finish ();
  (* join: fold worker counter deltas into the master (fieldwise sums,
     order-independent), then splice chunk outputs and per-iteration costs
     back into sequential order *)
  for s = 1 to Array.length rt.states - 1 do
    Cost.add_into ~into:m.ds_counters (Cost.diff rt.states.(s).ds_counters starts.(s))
  done;
  let chunks =
    List.sort
      (fun a b -> compare a.ck_lo b.ck_lo)
      (List.concat (Array.to_list results))
  in
  List.iter (fun ck -> Buffer.add_buffer m.ds_out ck.ck_out) chunks;
  let iters = Array.of_list (List.concat_map (fun ck -> ck.ck_iters) chunks) in
  (* deterministic reduction merge: fold the chunk partials into the
     master's pre-loop value in ascending ck_lo order.  The chunk intervals
     are a function of (schedule, workers, n) alone — never of execution
     order — so a given jobs level always merges in the same order, and for
     exactly-representable values the result is byte-identical to the
     sequential left fold at every jobs level. *)
  List.iteri
    (fun ri rd ->
      fr.(rd.rd_slot) <-
        List.fold_left
          (fun acc ck -> red_combine rd acc (List.nth ck.ck_reds ri))
          fr.(rd.rd_slot) chunks)
    cn.oc_reds;
  (* the induction variable holds its first non-taken value afterwards *)
  fr.(cn.oc_slot) <- Mem.VInt (lo + (n * stride));
  rt.segments <- Trace.Par { sched; iters } :: rt.segments;
  rt.seg_start <- Cost.copy m.ds_counters

let rec compile_stmt cenv (s : Ast.stmt) : stmt_code =
  let rt = cenv.rt in
  match s.Ast.sdesc with
  | Ast.SExpr e ->
    let f, _ = compile_expr cenv e in
    fun fr -> ignore (f fr)
  | Ast.SDecl d -> compile_decl cenv d
  | Ast.SIf (cond, th, el) -> (
    let fc, _ = compile_expr cenv cond in
    let fth = compile_in_scope cenv th in
    match el with
    | None ->
      fun fr ->
        bump_branch rt;
        if Mem.truthy (fc fr) then fth fr
    | Some el ->
      let fel = compile_in_scope cenv el in
      fun fr ->
        bump_branch rt;
        if Mem.truthy (fc fr) then fth fr else fel fr)
  | Ast.SWhile (cond, body) ->
    let fc, _ = compile_expr cenv cond in
    let fb = compile_in_scope cenv body in
    fun fr ->
      (try
         bump_branch rt;
         while Mem.truthy (fc fr) do
           (try fb fr with Continue_e -> ());
           bump_branch rt
         done
       with Break_e -> ())
  | Ast.SDoWhile (body, cond) ->
    let fb = compile_in_scope cenv body in
    let fc, _ = compile_expr cenv cond in
    fun fr ->
      (try
         let continue_loop = ref true in
         while !continue_loop do
           (try fb fr with Continue_e -> ());
           bump_branch rt;
           continue_loop := Mem.truthy (fc fr)
         done
       with Break_e -> ())
  | Ast.SFor (init, cond, step, body) -> compile_for cenv ~vec:None init cond step body
  | Ast.SReturn None -> fun _ -> raise (Return_v (Mem.VInt 0))
  | Ast.SReturn (Some e) ->
    let f, _ = compile_expr cenv e in
    fun fr -> raise (Return_v (f fr))
  | Ast.SBlock ss -> compile_block cenv ss
  | Ast.SBreak -> fun _ -> raise Break_e
  | Ast.SContinue -> fun _ -> raise Continue_e
  | Ast.SPragma _ -> nop_stmt

(* a statement in its own scope (if/while bodies) *)
and compile_in_scope cenv s =
  let saved_scope = cenv.scope in
  let code = compile_stmt cenv s in
  cenv.scope <- saved_scope;
  code

(* Build (entry, cond) for a loop: [entry] runs once when the loop is
   entered, [cond] per iteration.  Hoistable bounds are evaluated into a
   hidden frame slot at entry (re-entrant across calls, unlike a shared
   ref). *)
and compile_loop_cond cenv cond step body =
  let rt = cenv.rt in
  let fallback () =
    match cond with
    | None -> (nop_stmt, fun _ -> true)
    | Some e ->
      let f, _ = compile_expr cenv e in
      (nop_stmt, fun fr -> Mem.truthy (f fr))
  in
  match hoistable_bound cond step body with
  | Some (lhs, bound, strict) -> (
    let flhs, tl = compile_expr cenv lhs in
    let fbound, tb = compile_expr cenv bound in
    match (tl, tb) with
    | (Ast.Int | Ast.Char), (Ast.Int | Ast.Char) ->
      let slot = cenv.nslots in
      cenv.nslots <- cenv.nslots + 1;
      let entry fr = fr.(slot) <- Mem.VInt (Mem.to_int (fbound fr)) in
      let cond fr =
        bump_int rt;
        let v = Mem.to_int (flhs fr) in
        let b = Mem.to_int fr.(slot) in
        if strict then v < b else v <= b
      in
      (entry, cond)
    | _ -> fallback ())
  | None -> fallback ()

and compile_decl cenv (d : Ast.decl) : stmt_code =
  let rt = cenv.rt in
  let ty = resolve cenv d.Ast.d_type in
  match ty with
  | Ast.Array (_, _) ->
    (* local array: fresh storage at each execution of the declaration *)
    let slot = fresh_slot cenv d.Ast.d_name ty in
    let rec base_and_len t =
      match resolve cenv t with
      | Ast.Array (e, Some n) ->
        let b, l = base_and_len e in
        (b, n * l)
      | t -> (t, 1)
    in
    let base, len = base_and_len ty in
    let mk () =
      match base with
      | Ast.Float -> Mem.alloc_floats rt.alloc ~elem_bytes:4 len
      | Ast.Double -> Mem.alloc_floats rt.alloc ~elem_bytes:8 len
      | Ast.Int | Ast.Char -> Mem.alloc_ints rt.alloc len
      | Ast.Ptr _ -> Mem.alloc_ptrs rt.alloc len
      | _ -> unsupported "unsupported local array type"
    in
    let name = d.Ast.d_name in
    fun fr ->
      bump_extra rt 4;
      let p = mk () in
      register_ptr_region rt.alloc name p;
      fr.(slot) <- Mem.VPtr p
  | Ast.Struct _ -> unsupported "struct values are not executable in this build"
  | _ -> (
    match d.Ast.d_init with
    | None ->
      let slot = fresh_slot cenv d.Ast.d_name ty in
      let zero =
        if is_floaty ty then Mem.VFloat 0.0
        else match ty with Ast.Ptr _ -> Mem.VNull | _ -> Mem.VInt 0
      in
      fun fr -> fr.(slot) <- zero
    | Some init ->
      (* compile the initializer BEFORE binding the name (C scoping) *)
      let finit, _ = compile_expr cenv init in
      let slot = fresh_slot cenv d.Ast.d_name ty in
      fun fr -> fr.(slot) <- coerce ty (finit fr))

and compile_block cenv (ss : Ast.stmt list) : stmt_code =
  let saved_scope = cenv.scope in
  (* pragma-aware sequencing: omp/vector pragmas bind to the next for-loop *)
  let rec go acc = function
    | [] -> List.rev acc
    | { Ast.sdesc = Ast.SPragma p; _ } :: ({ Ast.sdesc = Ast.SFor (i, c, st, b); _ })
      :: rest
      when is_omp_for p ->
      let code = compile_omp_for cenv p i c st b in
      go (code :: acc) rest
    | { Ast.sdesc = Ast.SPragma p; _ } :: rest when is_vector_pragma p ->
      (* consume consecutive vector pragmas, then the loop *)
      let rest = drop_vector_pragmas rest in
      (match rest with
      | ({ Ast.sdesc = Ast.SFor (i, c, st, b); _ }) :: rest' ->
        let code = compile_for cenv ~vec:(Some Pragma_vec) i c st b in
        go (code :: acc) rest'
      | _ -> go acc rest)
    | { Ast.sdesc = Ast.SPragma p; _ } :: guarded :: rest
      when Pragma.is_critical p || Pragma.is_atomic p ->
      go (compile_guarded cenv p guarded :: acc) rest
    | s :: rest -> go (compile_stmt cenv s :: acc) rest
  in
  let codes = Array.of_list (go [] ss) in
  cenv.scope <- saved_scope;
  fun fr ->
    for i = 0 to Array.length codes - 1 do
      codes.(i) fr
    done

and is_omp_for p = Pragma.is_omp_for p

and is_vector_pragma p = p = "ivdep" || p = "vector always" || p = "simd"

(* [#pragma omp critical] / [#pragma omp atomic] + the guarded statement:
   real mutual exclusion on the named lock (atomic shares one reserved
   name), so concurrent chunks of an enclosing parallel loop serialize
   their shared updates.  On the traced (sequential) path the held-lock set
   is additionally maintained so every logged access carries it — the
   lock-event channel of both race engines. *)
and compile_guarded cenv pragma guarded : stmt_code =
  let rt = cenv.rt in
  let name =
    if Pragma.is_atomic pragma then Runtime.Locks.atomic_name
    else
      match Pragma.critical_name pragma with
      | Some "" | None -> Runtime.Locks.anonymous_critical
      | Some n -> n
  in
  let lid = Runtime.Locks.id name in
  let fstmt = compile_stmt cenv guarded in
  fun fr ->
    Runtime.Locks.acquire lid;
    if rt.trace_accesses then
      rt.held_locks <- List.sort_uniq compare (lid :: rt.held_locks);
    let release () =
      if rt.trace_accesses then
        rt.held_locks <- List.filter (fun l -> l <> lid) rt.held_locks;
      Runtime.Locks.release lid
    in
    (match fstmt fr with
    | () -> release ()
    | exception e ->
      release ();
      raise e)

and drop_vector_pragmas = function
  | { Ast.sdesc = Ast.SPragma p; _ } :: rest when is_vector_pragma p ->
    drop_vector_pragmas rest
  | l -> l

and compile_for cenv ~vec init cond step body : stmt_code =
  let rt = cenv.rt in
  let saved_scope = cenv.scope in
  let finit =
    match init with
    | None -> nop_stmt
    | Some (Ast.FInitExpr e) ->
      let f, _ = compile_expr cenv e in
      fun fr -> ignore (f fr)
    | Some (Ast.FInitDecl d) -> compile_decl cenv d
  in
  let fentry, fcond = compile_loop_cond cenv cond step body in
  let fstep =
    match step with
    | None -> nop_stmt
    | Some e ->
      let f, _ = compile_expr cenv e in
      fun fr -> ignore (f fr)
  in
  (* vectorization classification *)
  let vec_flag =
    match vec with
    | Some v -> Some v
    | None -> if autovec_eligible cenv.funcs init cond body then Some Auto_vec else None
  in
  let fbody = compile_stmt cenv body in
  cenv.scope <- saved_scope;
  (* One body iteration.  When a parallel iteration is being recorded at
     tile granularity and this loop sits directly inside the recorded body
     (rec_depth = 0), its iterations are that (tile) iteration's
     point-iteration children: mark where each begins in the access log. *)
  let run_body fr =
    match rt.rec_points with
    | None -> ( try fbody fr with Continue_e -> ())
    | Some pts ->
      if rt.rec_depth = 0 then pts := rt.rec_nacc :: !pts;
      rt.rec_depth <- rt.rec_depth + 1;
      (try (try fbody fr with Continue_e -> ())
       with e ->
         rt.rec_depth <- rt.rec_depth - 1;
         raise e);
      rt.rec_depth <- rt.rec_depth - 1
  in
  match vec_flag with
  | None ->
    fun fr ->
      finit fr;
      fentry fr;
      (try
         bump_branch rt;
         while fcond fr do
           run_body fr;
           fstep fr;
           bump_branch rt
         done
       with Break_e -> ())
  | Some mode ->
    fun fr ->
      let ds = cur rt in
      let saved = ds.ds_vec_mode in
      (* pragma beats auto; never downgrade an enclosing pragma *)
      ds.ds_vec_mode <- (if saved = Pragma_vec then saved else mode);
      finit fr;
      fentry fr;
      (try
         bump_branch rt;
         while fcond fr do
           run_body fr;
           fstep fr;
           bump_branch rt
         done
       with Break_e -> ());
      ds.ds_vec_mode <- saved

(* Canonical induction analysis for a candidate parallel loop; [None] means
   "fall back to sequential execution".  Must run while the loop's init is
   in scope (after [finit] is compiled).  [privatized] lists names the pragma
   privatizes (induction variable + private(...) clause): the body may
   mutate those — each chunk runs on its own frame copy, which implements
   exactly OpenMP's private semantics — so a tiled/skewed multi-loop nest
   whose body drives inner loop iterators still dispatches to the pool.
   [reductions] lists the pragma's recognized [reduction(op:name)] pairs:
   each name must resolve to a local scalar slot distinct from the
   induction variable, and every use of it in the body must be an
   [op]-shaped update ({!red_body_ok}) — then the accumulator is classified
   into [oc_reds] and its mutation is admitted (chunks run identity-seeded
   private copies, merged deterministically at the join).  A reduction that
   fails classification disqualifies the whole loop: executing it in
   parallel without the merge would lose updates. *)
and canon_induction cenv ~privatized ~reductions init cond step body :
    omp_canon option =
  let ind =
    match init with
    | Some
        (Ast.FInitExpr
          { Ast.edesc = Ast.Assign (Ast.OpAssign, { Ast.edesc = Ast.Ident n; _ }, _); _ })
      ->
      Some n
    | Some (Ast.FInitDecl { Ast.d_name; d_init = Some _; _ }) -> Some d_name
    | _ -> None
  in
  match ind with
  | None -> None
  | Some n -> (
    match lookup_local cenv n with
    | Some (slot, (Ast.Int | Ast.Char)) -> (
      let stride =
        match step with
        | Some { Ast.edesc = Ast.IncDec { inc = true; arg = { Ast.edesc = Ast.Ident m; _ }; _ }; _ }
          when m = n ->
          Some 1
        | Some
            { Ast.edesc =
                Ast.Assign
                  (Ast.OpAddAssign, { Ast.edesc = Ast.Ident m; _ },
                   { Ast.edesc = Ast.IntLit k; _ });
              _ }
          when m = n && k > 0 ->
          Some k
        | Some
            { Ast.edesc =
                Ast.Assign
                  (Ast.OpAssign, { Ast.edesc = Ast.Ident m; _ },
                   { Ast.edesc =
                       Ast.Binop
                         (Ast.Add, { Ast.edesc = Ast.Ident m2; _ },
                          { Ast.edesc = Ast.IntLit k; _ });
                     _ });
              _ }
          when m = n && m2 = n && k > 0 ->
          Some k
        | _ -> None
      in
      match (stride, hoistable_bound cond step body) with
      | Some stride, Some ({ Ast.edesc = Ast.Ident n'; _ }, bound, strict)
        when n' = n ->
        if
          side_effect_free_bound bound
          && (not (stmt_has_return body))
          && (not (stmt_has_toplevel_break body))
          && (not (body_may_exit cenv body))
          && List.for_all
               (* no mutation of any register variable visible outside the
                  body — including the induction variable itself — except
                  names the pragma privatizes (chunks run on frame copies);
                  memory (arrays, globals through their address) is shared
                  as in real OpenMP and left to the race checker *)
               (fun m ->
                 Option.is_none (lookup_local cenv m)
                 || (m <> n
                    && (List.mem m privatized
                       || List.mem_assoc m reductions)))
               (mutated_in_stmt body)
        then begin
          (* classify every reduction accumulator, or reject the loop *)
          let classify (nm, op) =
            if nm = n then None
            else
              match lookup_local cenv nm with
              | Some (rslot, rty) -> (
                match resolve cenv rty with
                | (Ast.Int | Ast.Char | Ast.Float | Ast.Double) as t
                  when red_body_ok nm op body ->
                  Some { rd_slot = rslot; rd_op = op; rd_floaty = is_floaty t }
                | _ -> None)
              | None -> None
          in
          let reds = List.map classify reductions in
          if List.exists Option.is_none reds then None
          else
            let fbound, tb = compile_expr cenv bound in
            match tb with
            | Ast.Int | Ast.Char ->
              Some
                {
                  oc_slot = slot;
                  oc_bound = fbound;
                  oc_strict = strict;
                  oc_stride = stride;
                  oc_reds = List.filter_map Fun.id reds;
                }
            | _ -> None
        end
        else None
      | _ -> None)
    | _ -> None)

(* #pragma omp parallel for: record one cost snapshot per iteration of the
   annotated loop; when a domain pool is attached and the loop is canonical,
   the iterations really execute in parallel (see [exec_parallel]). *)
and compile_omp_for cenv pragma init cond step body : stmt_code =
  let rt = cenv.rt in
  let sched = Trace.sched_of_pragma pragma in
  let saved_scope = cenv.scope in
  let saved_ctx = cenv.shadow_ctx in
  (* Open the shadow-slot context BEFORE compiling any loop component, so
     every slot-resolved access in init/cond/step/body sees it.  A nested
     pragma keeps the OUTER context: its iterations run inside one outer
     iteration, and the outer [sx_limit] is the one that separates shared
     from body-local slots. *)
  (* Names the pragma privatizes: the induction variable (OpenMP's
     for-directive privatizes it; the FInitDecl form declares it inside the
     loop and needs no entry) plus the private(...) clause.  Reduction
     accumulators are privatized too — every reduction(...) name, whether
     or not its operator is one we can parallelize, runs on a per-thread
     copy under real OpenMP, so the race detector must not see it as a
     shared scalar — but only recognized operators ([clause_reds]) admit
     parallel dispatch, via the identity-seeded merge in [exec_parallel]. *)
  let clause_private =
    (match init with
    | Some
        (Ast.FInitExpr
          { Ast.edesc = Ast.Assign (_, { Ast.edesc = Ast.Ident n; _ }, _); _ }) ->
      [ n ]
    | _ -> [])
    @ Trace.private_of_pragma pragma
  in
  let reduction_clause = Trace.reduction_of_pragma pragma in
  let clause_reds =
    List.filter_map
      (fun (ops, nm) ->
        match red_op_of_string ops with Some op -> Some (nm, op) | None -> None)
      reduction_clause
  in
  let privatized = clause_private @ List.map snd reduction_clause in
  if rt.shadow_slots && saved_ctx = None then begin
    let sx = { sx_limit = cenv.nslots; sx_private = Hashtbl.create 4 } in
    cenv.shadow_ctx <- Some sx;
    let privatize n =
      match lookup_local cenv n with
      | Some (slot, _) -> Hashtbl.replace sx.sx_private slot ()
      | None -> ()  (* e.g. private(x) for a var declared inside the body *)
    in
    List.iter privatize privatized
  end;
  let finit =
    match init with
    | None -> nop_stmt
    | Some (Ast.FInitExpr e) ->
      let f, _ = compile_expr cenv e in
      fun fr -> ignore (f fr)
    | Some (Ast.FInitDecl d) -> compile_decl cenv d
  in
  let fentry, fcond = compile_loop_cond cenv cond step body in
  let fstep =
    match step with
    | None -> nop_stmt
    | Some e ->
      let f, _ = compile_expr cenv e in
      fun fr -> ignore (f fr)
  in
  (* tile_grain admits privatized-name mutation (multi-loop nest bodies);
     off reverts to the single-statement-body dispatch of PR 3 *)
  let canon =
    canon_induction cenv
      ~privatized:(if rt.tile_grain then clause_private else [])
      ~reductions:clause_reds init cond step body
  in
  let fbody = compile_stmt cenv body in
  cenv.scope <- saved_scope;
  cenv.shadow_ctx <- saved_ctx;
  fun fr ->
    if (cur rt).ds_slot <> 0 || rt.in_parallel then begin
      (* nested parallel regions execute sequentially (OpenMP default) *)
      finit fr;
      fentry fr;
      try
        bump_branch rt;
        while fcond fr do
          (try fbody fr with Continue_e -> ());
          fstep fr;
          bump_branch rt
        done
      with Break_e -> ()
    end
    else begin
      match (rt.pool, canon) with
      | Some pool, Some cn when Runtime.Pool.size pool > 1 && not rt.trace_accesses ->
        (* real fork/join over the domain pool; access tracing stays on the
           sequential path (the race detector replays schedules itself) *)
        exec_parallel rt pool sched cn fbody finit fr
      | _ ->
        (* sequential recording path *)
        let counters = (master rt).ds_counters in
        rt.segments <- Trace.Seq (Cost.diff counters rt.seg_start) :: rt.segments;
        rt.in_parallel <- true;
        let iters = ref [] in
        let iter_accs = ref [] in
        let iter_points = ref [] in
        finit fr;
        fentry fr;
        (try
           bump_branch rt;
           while fcond fr do
             let snap = Cost.copy counters in
             (* fresh access buffer per iteration: loop-control evaluation
                between iterations is deliberately NOT logged (each OpenMP
                thread privatizes the induction variable and re-reads only
                loop-invariant bounds) *)
             let buf = if rt.trace_accesses then Some (ref []) else None in
             rt.access_log <- buf;
             (* nested point-iteration marks: the immediate child loop of the
                body (the next tile/point loop level) records where each of
                its iterations starts in this iteration's access log *)
             let pts =
               if rt.trace_accesses && rt.tile_grain then Some (ref []) else None
             in
             rt.rec_points <- pts;
             rt.rec_depth <- 0;
             rt.rec_nacc <- 0;
             (try fbody fr with Continue_e -> ());
             fstep fr;
             rt.access_log <- None;
             rt.rec_points <- None;
             bump_branch rt;
             iters := Cost.diff counters snap :: !iters;
             (match buf with
             | Some b -> iter_accs := Array.of_list (List.rev !b) :: !iter_accs
             | None -> ());
             (match pts with
             | Some p -> iter_points := Array.of_list (List.rev !p) :: !iter_points
             | None -> ())
           done
         with Break_e -> ());
        rt.access_log <- None;
        rt.rec_points <- None;
        rt.in_parallel <- false;
        rt.segments <-
          Trace.Par { sched; iters = Array.of_list (List.rev !iters) } :: rt.segments;
        if rt.trace_accesses then
          rt.par_traces <-
            { Trace.pt_sched = sched;
              pt_unit = Trace.unit_of_pragma pragma;
              pt_accesses = Array.of_list (List.rev !iter_accs);
              pt_points = Array.of_list (List.rev !iter_points) }
            :: rt.par_traces;
        rt.seg_start <- Cost.copy counters
    end
