(** The interpreter's memory: typed heap objects with synthetic addresses.

    Objects carry a base address from a bump allocator so that the cache
    simulator sees a realistic address stream (row-major layouts, distinct
    arrays in distinct regions).  Pointers are (object, element offset)
    pairs — out-of-bounds accesses fault like a real program would, which
    doubles as a sanitizer for the compiler chain. *)

type obj =
  | OFloats of float array  (** also used for double; width tracked per obj *)
  | OInts of int array
  | OPtrs of ptr option array

and ptr = { p_obj : obj; p_base : int;  (** synthetic byte address of element 0 *)
            p_off : int;  (** element offset *)
            p_elem_bytes : int }

type value = VInt of int | VFloat of float | VPtr of ptr | VNull

exception Fault of string

let fault fmt = Fmt.kstr (fun m -> raise (Fault m)) fmt

(** A labelled address range, recorded so that diagnostics (the race
    detector in particular) can resolve a raw synthetic address back to
    "array A, element 17".  The bump allocator makes ranges disjoint. *)
type region = {
  rg_label : string;  (** variable name, or "heap" / "string" *)
  rg_base : int;
  rg_bytes : int;
  rg_elem_bytes : int;
}

type allocator = {
  mutable next_addr : int;
  mutable live_bytes : int;
  mutable regions : region list;  (** newest first *)
  al_mutex : Mutex.t;
      (** the allocator is the one piece of interpreter state genuinely
          shared between domains when parallel loop bodies allocate (malloc,
          local arrays); address handout and region registration are
          serialized here *)
}

let create_allocator () =
  { next_addr = 0x1000_0000; live_bytes = 0; regions = []; al_mutex = Mutex.create () }

let register_region alloc ~label ~base ~bytes ~elem_bytes =
  Mutex.lock alloc.al_mutex;
  alloc.regions <-
    { rg_label = label; rg_base = base; rg_bytes = bytes; rg_elem_bytes = elem_bytes }
    :: alloc.regions;
  Mutex.unlock alloc.al_mutex

(** Resolve an address to its region, if any. *)
let locate_region regions addr =
  List.find_opt (fun r -> addr >= r.rg_base && addr < r.rg_base + r.rg_bytes) regions

let align n a = (n + a - 1) / a * a

let alloc_addr alloc bytes =
  Mutex.lock alloc.al_mutex;
  let addr = align alloc.next_addr 64 in
  alloc.next_addr <- addr + bytes;
  alloc.live_bytes <- alloc.live_bytes + bytes;
  Mutex.unlock alloc.al_mutex;
  addr

(** Shadow address for a function-local scalar slot: a one-element labelled
    region so the race detector can see (and name) local-scalar accesses.
    The value itself stays in the frame slot — the address only identifies
    the variable in access logs. *)
let shadow_slot alloc ~label ~bytes =
  let base = alloc_addr alloc bytes in
  register_region alloc ~label ~base ~bytes ~elem_bytes:bytes;
  base

let alloc_floats alloc ~elem_bytes n =
  let base = alloc_addr alloc (n * elem_bytes) in
  { p_obj = OFloats (Array.make n 0.0); p_base = base; p_off = 0; p_elem_bytes = elem_bytes }

let alloc_ints alloc n =
  let base = alloc_addr alloc (n * 4) in
  { p_obj = OInts (Array.make n 0); p_base = base; p_off = 0; p_elem_bytes = 4 }

let alloc_ptrs alloc n =
  let base = alloc_addr alloc (n * 8) in
  { p_obj = OPtrs (Array.make n None); p_base = base; p_off = 0; p_elem_bytes = 8 }

let ptr_add p k = { p with p_off = p.p_off + k }

let addr_of p = p.p_base + (p.p_off * p.p_elem_bytes)

let obj_length = function
  | OFloats a -> Array.length a
  | OInts a -> Array.length a
  | OPtrs a -> Array.length a

let check_bounds p what =
  let n = obj_length p.p_obj in
  if p.p_off < 0 || p.p_off >= n then
    fault "%s out of bounds: offset %d not in [0,%d)" what p.p_off n

(** Load without touching the cache or counters: used when the backend model
    decides the value is register-resident (same site, same address). *)
let peek (p : ptr) : value =
  check_bounds p "load";
  match p.p_obj with
  | OFloats a -> VFloat a.(p.p_off)
  | OInts a -> VInt a.(p.p_off)
  | OPtrs a -> ( match a.(p.p_off) with Some q -> VPtr q | None -> VNull)

(** Store without touching the cache (register-resident cell; the final
    writeback is charged when the site moves to a new address). *)
let poke (p : ptr) (v : value) : unit =
  check_bounds p "store";
  match (p.p_obj, v) with
  | OFloats a, VFloat f -> a.(p.p_off) <- f
  | OFloats a, VInt i -> a.(p.p_off) <- float_of_int i
  | OInts a, VInt i -> a.(p.p_off) <- i
  | OInts a, VFloat f -> a.(p.p_off) <- int_of_float f
  | OPtrs a, VPtr q -> a.(p.p_off) <- Some q
  | OPtrs a, VNull -> a.(p.p_off) <- None
  | _ -> fault "type-incompatible store"

(** Load the element [p] points at.  The [cache] sees the address. *)
let load cache (p : ptr) : value =
  check_bounds p "load";
  Cache.access cache (addr_of p);
  match p.p_obj with
  | OFloats a -> VFloat a.(p.p_off)
  | OInts a -> VInt a.(p.p_off)
  | OPtrs a -> ( match a.(p.p_off) with Some q -> VPtr q | None -> VNull)

let store cache (p : ptr) (v : value) : unit =
  check_bounds p "store";
  Cache.access cache (addr_of p);
  match (p.p_obj, v) with
  | OFloats a, VFloat f -> a.(p.p_off) <- f
  | OFloats a, VInt i -> a.(p.p_off) <- float_of_int i
  | OInts a, VInt i -> a.(p.p_off) <- i
  | OInts a, VFloat f -> a.(p.p_off) <- int_of_float f
  | OPtrs a, VPtr q -> a.(p.p_off) <- Some q
  | OPtrs a, VNull -> a.(p.p_off) <- None
  | _ -> fault "type-incompatible store"

(* value coercions *)
let to_int = function
  | VInt i -> i
  | VFloat f -> int_of_float f
  | VNull -> 0
  | VPtr _ -> fault "pointer used as integer"

let to_float = function
  | VFloat f -> f
  | VInt i -> float_of_int i
  | VNull | VPtr _ -> fault "pointer used as float"

let to_ptr = function
  | VPtr p -> p
  | VNull -> fault "null pointer dereference"
  | VInt _ | VFloat _ -> fault "scalar used as pointer"

let truthy = function
  | VInt i -> i <> 0
  | VFloat f -> f <> 0.0
  | VPtr _ -> true
  | VNull -> false

(* ------------------------------------------------------------------ *)
(* Typed unboxed accessors for the fast (uninstrumented) execution
   variant: element [p_off + k] of [p]'s object read or written directly
   as a native OCaml int/float, with exactly the bounds behaviour and the
   conversion arms of [load]/[store] minus the cache simulation.  The
   matching arm never allocates; the fallback arms box through
   [peek]/[poke], but only fire at genuinely polymorphic seams
   (pointer-element arrays, type-punned objects). *)

let at p k = { p with p_off = p.p_off + k }

let peek_at p k = peek (at p k)
let poke_at p k v = poke (at p k) v

let[@inline] get_f (p : ptr) k : float =
  match p.p_obj with
  | OFloats a ->
    let j = p.p_off + k in
    if j < 0 || j >= Array.length a then
      fault "load out of bounds: offset %d not in [0,%d)" j (Array.length a)
    else Array.unsafe_get a j
  | _ -> to_float (peek_at p k)

let[@inline] set_f (p : ptr) k (x : float) : unit =
  match p.p_obj with
  | OFloats a ->
    let j = p.p_off + k in
    if j < 0 || j >= Array.length a then
      fault "store out of bounds: offset %d not in [0,%d)" j (Array.length a)
    else Array.unsafe_set a j x
  | _ -> poke_at p k (VFloat x)

let[@inline] get_p (p : ptr) k : ptr =
  match p.p_obj with
  | OPtrs a -> (
    let j = p.p_off + k in
    if j < 0 || j >= Array.length a then
      fault "load out of bounds: offset %d not in [0,%d)" j (Array.length a)
    else
      match Array.unsafe_get a j with
      | Some q -> q
      | None -> fault "null pointer dereference")
  | _ -> to_ptr (peek_at p k)

let[@inline] get_i (p : ptr) k : int =
  match p.p_obj with
  | OInts a ->
    let j = p.p_off + k in
    if j < 0 || j >= Array.length a then
      fault "load out of bounds: offset %d not in [0,%d)" j (Array.length a)
    else Array.unsafe_get a j
  | _ -> to_int (peek_at p k)

let[@inline] set_i (p : ptr) k (v : int) : unit =
  match p.p_obj with
  | OInts a ->
    let j = p.p_off + k in
    if j < 0 || j >= Array.length a then
      fault "store out of bounds: offset %d not in [0,%d)" j (Array.length a)
    else Array.unsafe_set a j v
  | _ -> poke_at p k (VInt v)
