(** Execution profiles: the interface between the interpreter and the
    multicore machine model.

    The instrumented run slices execution into sequential segments and
    parallel-loop segments; a parallel segment carries one {!Cost.t} per
    iteration of the loop the [#pragma omp parallel for] covers, plus the
    requested OpenMP schedule.  The machine model replays the segments for
    any core count. *)

type sched_kind =
  | Static  (** contiguous blocks, the OpenMP default *)
  | Static_chunk of int
  | Dynamic of int
  | Guided of int
      (** exponentially decaying grants down to a floor (the argument);
          executed by the work-stealing pool, replayed deterministically by
          the race engines via {!Runtime.Par_loop.plan} *)

type segment =
  | Seq of Cost.t
  | Par of { sched : sched_kind; iters : Cost.t array }

(** One memory access inside a parallelized loop, recorded when the run is
    executed with access tracing (see {!Exec.run}).  The iteration vector of
    the access is its index in the enclosing {!par_trace} (the parallel loop
    is the only loop whose iterations run concurrently; nested loops execute
    inside one iteration). *)
type access = {
  ac_loc : string;  (** source location of the load/store site *)
  ac_addr : int;  (** synthetic byte address *)
  ac_bytes : int;  (** width of the access *)
  ac_write : bool;
  ac_locks : int list;
      (** {!Runtime.Locks} ids held at the access, sorted ascending; [[]]
          outside any [critical]/[atomic] section.  This is the lock-event
          channel the lockset race engine intersects and the happens-before
          engine derives release→acquire edges from. *)
}

(** The per-iteration access log of one parallel segment, in segment order
    alongside {!profile.segments}' [Par] entries. *)
type par_trace = {
  pt_sched : sched_kind;  (** the schedule the pragma requested *)
  pt_unit : int option;
      (** id of the [Pluto] transform unit whose codegen emitted the pragma
          (parsed from the pragma's [unit N] tag); [None] for hand-written
          pragmas *)
  pt_accesses : access array array;  (** [pt_accesses.(i)] = iteration [i] *)
  pt_points : int array array;
      (** nested segment structure: [pt_points.(i)] holds, in ascending
          order, the offset into [pt_accesses.(i)] where each point-iteration
          child of parallel iteration [i] begins.  Under a tiled schedule a
          parallel iteration is a whole tile and the children are the
          iterations of the next loop level inside it; [[||]] = no nested
          structure recorded (a plain one-statement body, or tile-granular
          tracing off). *)
}

(** The inspector's runtime verdict for one execution of a runtime-checked
    parallel loop (a pragma carrying an [[inspector:…]] marker).  Logged in
    every instrumentation variant, whether or not the loop dispatched. *)
type insp_verdict = {
  iv_par : int;
      (** ordinal of the [Par] segment this verdict guards (its index among
          the profile's [Par] segments, in order) *)
  iv_unit : int option;  (** the pragma's [unit N] tag, as in {!par_trace} *)
  iv_disjoint : bool;
      (** [true]: footprints pairwise disjoint across iterations — the loop
          was eligible for parallel dispatch; [false]: a conflict (or an
          unprobeable shape) forced the byte-identical sequential fallback *)
  iv_checks : int;  (** addresses probed by the inspector loop *)
}

type profile = {
  segments : segment list;
  output : string;  (** everything the program printed *)
  return_code : int;
  regions : Mem.region list;  (** address-range labels for provenance *)
  par_traces : par_trace list option;  (** [None] unless traced (one entry
                                           per [Par] segment, in order) *)
  insp : insp_verdict list;
      (** inspector verdicts, in execution order; [[]] when no
          runtime-checked loop ran *)
}

(** Point-iteration marks of parallel iteration [i], tolerant of hand-built
    traces that omit the (positional) nested structure entirely. *)
let points_of (pt : par_trace) i =
  if i < Array.length pt.pt_points then pt.pt_points.(i) else [||]

(** Index of the point-iteration child that access offset [k] of a parallel
    iteration falls into, given that iteration's marks: the number of marks
    at or before [k], minus one.  [-1] = before the first mark (loop preamble)
    or no nested structure at all. *)
let point_of (points : int array) k =
  let n = Array.length points in
  let rec go i = if i < n && points.(i) <= k then go (i + 1) else i in
  go 0 - 1

(* index of [needle] in [haystack], or raise Not_found *)
let find_sub haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then raise Not_found
    else if String.sub haystack i nl = needle then i
    else go (i + 1)
  in
  go 0

(* the integer right after [prefix] in [text], or [default] *)
let int_after text prefix default =
  match find_sub text prefix with
  | exception Not_found -> default
  | start ->
    let i = start + String.length prefix in
    let buf = Buffer.create 4 in
    let n = String.length text in
    let rec go i =
      if i < n && text.[i] >= '0' && text.[i] <= '9' then begin
        Buffer.add_char buf text.[i];
        go (i + 1)
      end
    in
    go i;
    let s = Buffer.contents buf in
    if s = "" then default else int_of_string s

(** Parse the [unit N] attribution tag the polyhedral codegen appends to the
    pragmas it emits (see [Pluto.run]); [None] on hand-written pragmas. *)
let unit_of_pragma text =
  match find_sub text "[unit " with
  | exception Not_found -> None
  | _ -> (
    match int_after text "[unit " (-1) with -1 -> None | n -> Some n)

(** Parse the [[inspector]] / [[inspector:a,b]] marker the gather path of
    [Pluto] appends to runtime-checked pragmas: [None] = no marker (a
    statically proven loop), [Some arrays] = the checked arrays whose
    footprints the inspector must probe ([[]] = nothing can conflict, the
    check is vacuous but the dispatch is still inspector-gated). *)
let inspector_of_pragma text =
  match find_sub text "[inspector" with
  | exception Not_found -> None
  | start -> (
    let i = start + String.length "[inspector" in
    match String.index_from_opt text i ']' with
    | None -> Some []
    | Some j ->
      let body = String.sub text i (j - i) in
      let names =
        match String.index_opt body ':' with
        | None -> []
        | Some c ->
          String.sub body (c + 1) (String.length body - c - 1)
          |> String.split_on_char ','
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
      in
      Some names)

(** Names listed in the [private(...)] clause of an [omp parallel for]
    pragma ([[]] when absent). *)
let private_of_pragma text =
  match find_sub text "private(" with
  | exception Not_found -> []
  | start -> (
    let i = start + String.length "private(" in
    match String.index_from_opt text i ')' with
    | None -> []
    | Some j ->
      String.sub text i (j - i)
      |> String.split_on_char ','
      |> List.map String.trim
      |> List.filter (fun s -> s <> ""))

(** The [(operator, name)] pairs of every [reduction(op:names)] clause of an
    [omp parallel for] pragma, in clause order ([[]] when absent).  Multiple
    names in one clause ([reduction(+:s,t)]) and repeated clauses both
    flatten into the list. *)
let reduction_of_pragma text =
  let n = String.length text in
  let rec clauses i acc =
    let sub = String.sub text i (n - i) in
    match find_sub sub "reduction(" with
    | exception Not_found -> List.rev acc
    | start -> (
      let op_from = i + start + String.length "reduction(" in
      match String.index_from_opt text op_from ')' with
      | None -> List.rev acc
      | Some close -> (
        let body = String.sub text op_from (close - op_from) in
        match String.index_opt body ':' with
        | None -> clauses (close + 1) acc
        | Some colon ->
          let op = String.trim (String.sub body 0 colon) in
          let names =
            String.sub body (colon + 1) (String.length body - colon - 1)
            |> String.split_on_char ','
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          clauses (close + 1)
            (List.rev_append (List.map (fun nm -> (op, nm)) names) acc)))
  in
  clauses 0 []

(** Parse the schedule clause of an [omp parallel for] pragma. *)
let sched_of_pragma text =
  let contains needle =
    match find_sub text needle with exception Not_found -> false | _ -> true
  in
  if contains "schedule(dynamic" then Dynamic (int_after text "schedule(dynamic," 1)
  else if contains "schedule(guided" then Guided (int_after text "schedule(guided," 1)
  else if contains "schedule(static," then Static_chunk (int_after text "schedule(static," 1)
  else Static

(** Aggregate cost over all segments (the sequential execution cost). *)
let total_cost profile =
  let acc = Cost.create () in
  List.iter
    (function
      | Seq c -> Cost.add_into ~into:acc c
      | Par { iters; _ } -> Array.iter (fun c -> Cost.add_into ~into:acc c) iters)
    profile.segments;
  acc

let n_parallel_segments profile =
  List.length (List.filter (function Par _ -> true | Seq _ -> false) profile.segments)

(** Total iterations across parallel segments (reporting helper). *)
let n_parallel_iterations profile =
  List.fold_left
    (fun acc -> function Par { iters; _ } -> acc + Array.length iters | Seq _ -> acc)
    0 profile.segments
