(** Set-associative LRU cache simulator.

    Interpreted memory accesses are filtered through a two-level cache model
    (per-core L1 and a shared L2 slice) so the machine model can charge DRAM
    bandwidth for actual misses instead of raw access counts.  This is what
    makes tiling (SICA) show a real benefit and makes streaming stencils
    bandwidth-bound at high core counts. *)

type level = {
  sets : int array array;  (** sets.(s).(w) = tag, -1 empty *)
  lru : int array array;  (** lru.(s).(w) = age, higher = more recent *)
  assoc : int;
  n_sets : int;
  line_shift : int;  (** log2 line size *)
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let make_level ~size_bytes ~assoc ~line_bytes =
  let line_shift =
    let rec go n s = if 1 lsl s >= n then s else go n (s + 1) in
    go line_bytes 0
  in
  let n_lines = max assoc (size_bytes / line_bytes) in
  let n_sets = max 1 (n_lines / assoc) in
  {
    sets = Array.make_matrix n_sets assoc (-1);
    lru = Array.make_matrix n_sets assoc 0;
    assoc;
    n_sets;
    line_shift;
    tick = 0;
    accesses = 0;
    misses = 0;
  }

(** Access [addr]; returns [true] on hit. *)
let access lvl addr =
  let line = addr lsr lvl.line_shift in
  let set_idx = line mod lvl.n_sets in
  let tags = lvl.sets.(set_idx) and ages = lvl.lru.(set_idx) in
  lvl.tick <- lvl.tick + 1;
  lvl.accesses <- lvl.accesses + 1;
  let hit = ref false in
  (try
     for w = 0 to lvl.assoc - 1 do
       if tags.(w) = line then begin
         ages.(w) <- lvl.tick;
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  if not !hit then begin
    lvl.misses <- lvl.misses + 1;
    (* replace LRU way *)
    let victim = ref 0 in
    for w = 1 to lvl.assoc - 1 do
      if ages.(w) < ages.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    ages.(!victim) <- lvl.tick
  end;
  !hit

let reset lvl =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) (-1)) lvl.sets;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) lvl.lru;
  lvl.tick <- 0;
  lvl.accesses <- 0;
  lvl.misses <- 0

(* ------------------------------------------------------------------ *)

type t = { l1 : level; l2 : level; counters : Cost.t }

(** Default hierarchy modeled on the paper's Opteron 6272: 16 KiB 4-way L1D,
    2 MiB 16-way L2, 64-byte lines. *)
let create ?(l1_bytes = 16 * 1024) ?(l1_assoc = 4) ?(l2_bytes = 2 * 1024 * 1024)
    ?(l2_assoc = 16) ?(line_bytes = 64) counters =
  {
    l1 = make_level ~size_bytes:l1_bytes ~assoc:l1_assoc ~line_bytes;
    l2 = make_level ~size_bytes:l2_bytes ~assoc:l2_assoc ~line_bytes;
    counters;
  }

let access t addr =
  if not (access t.l1 addr) then begin
    t.counters.Cost.l1_misses <- t.counters.Cost.l1_misses + 1;
    if not (access t.l2 addr) then
      t.counters.Cost.l2_misses <- t.counters.Cost.l2_misses + 1
  end

let reset_all t =
  reset t.l1;
  reset t.l2

let line_bytes t = 1 lsl t.l1.line_shift

(** Total simulated accesses that reached the L1 front end — zero proves a
    run never touched the cache model (the fast-path engagement witness). *)
let total_accesses t = t.l1.accesses

(* ------------------------------------------------------------------ *)

(** Per-site register-promotion memo, sharded by execution stream.

    The backend model treats a repeated access at the same site and the same
    address as register-resident (scalar replacement): it costs nothing and
    never reaches the cache simulator.  Sequential execution needs one cell
    of state per site — the last address seen.  Under domain-parallel
    execution the site closure is shared by every worker, so a single cell
    would be a data race {e and} would leak promotion state between
    threads; instead each execution stream (slot 0 = the master/sequential
    stream, slots 1.. = pool workers) owns one cell of the shard array.
    Distinct streams touch distinct cells, so probes are race-free without
    a lock, and each worker models exactly a private register — OpenMP's
    semantics for the promoted scalar. *)
module Memo = struct
  type t = int array  (** lasts.(stream) = last address seen, [min_int] = none *)

  let create ~streams : t = Array.make (max 1 streams) min_int

  (** [probe t ~stream addr] is [true] when the access is a register hit for
      [stream] (same address as its previous probe); records [addr] either
      way.  Streams beyond the shard width never promote (conservative). *)
  let[@inline] probe (t : t) ~stream addr =
    if stream < Array.length t then
      if t.(stream) = addr then true
      else begin
        t.(stream) <- addr;
        false
      end
    else false

  let reset (t : t) = Array.fill t 0 (Array.length t) min_int
end
