(** Abstract cost counters maintained by the instrumented interpreter.

    The interpreter executes the *transformed* program and counts operations
    by class; the {!Machine} library later maps classes to cycles for a
    concrete core and backend.  Floating-point work is split into three
    buckets so one execution can serve several compiler backends:

    - [flops_pragma_vec]: inside loops carrying SICA [ivdep]/[vector]
      pragmas — vectorized by any backend that honors the pragmas;
    - [flops_autovec]: inside loops our eligibility analysis says a
      vectorizing compiler (ICC-like) auto-vectorizes;
    - scalar flops: everything else. *)

type t = {
  mutable int_ops : int;
  mutable float_adds : int;
  mutable float_muls : int;
  mutable float_divs : int;
  mutable loads : int;
  mutable stores : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable calls : int;
  mutable builtin_calls : int;
  mutable branches : int;
  mutable flops_pragma_vec : int;
  mutable flops_autovec : int;
  mutable malloc_bytes : int;
  mutable extra_cycles : int;  (** directly charged cycles (allocator, ...) *)
}

let create () =
  {
    int_ops = 0;
    float_adds = 0;
    float_muls = 0;
    float_divs = 0;
    loads = 0;
    stores = 0;
    l1_misses = 0;
    l2_misses = 0;
    calls = 0;
    builtin_calls = 0;
    branches = 0;
    flops_pragma_vec = 0;
    flops_autovec = 0;
    malloc_bytes = 0;
    extra_cycles = 0;
  }

let copy c = { c with int_ops = c.int_ops }

let reset c =
  c.int_ops <- 0;
  c.float_adds <- 0;
  c.float_muls <- 0;
  c.float_divs <- 0;
  c.loads <- 0;
  c.stores <- 0;
  c.l1_misses <- 0;
  c.l2_misses <- 0;
  c.calls <- 0;
  c.builtin_calls <- 0;
  c.branches <- 0;
  c.flops_pragma_vec <- 0;
  c.flops_autovec <- 0;
  c.malloc_bytes <- 0;
  c.extra_cycles <- 0

(** [diff a b] = a - b, fieldwise (a is the later snapshot). *)
let diff a b =
  {
    int_ops = a.int_ops - b.int_ops;
    float_adds = a.float_adds - b.float_adds;
    float_muls = a.float_muls - b.float_muls;
    float_divs = a.float_divs - b.float_divs;
    loads = a.loads - b.loads;
    stores = a.stores - b.stores;
    l1_misses = a.l1_misses - b.l1_misses;
    l2_misses = a.l2_misses - b.l2_misses;
    calls = a.calls - b.calls;
    builtin_calls = a.builtin_calls - b.builtin_calls;
    branches = a.branches - b.branches;
    flops_pragma_vec = a.flops_pragma_vec - b.flops_pragma_vec;
    flops_autovec = a.flops_autovec - b.flops_autovec;
    malloc_bytes = a.malloc_bytes - b.malloc_bytes;
    extra_cycles = a.extra_cycles - b.extra_cycles;
  }

let add_into ~(into : t) (d : t) =
  into.int_ops <- into.int_ops + d.int_ops;
  into.float_adds <- into.float_adds + d.float_adds;
  into.float_muls <- into.float_muls + d.float_muls;
  into.float_divs <- into.float_divs + d.float_divs;
  into.loads <- into.loads + d.loads;
  into.stores <- into.stores + d.stores;
  into.l1_misses <- into.l1_misses + d.l1_misses;
  into.l2_misses <- into.l2_misses + d.l2_misses;
  into.calls <- into.calls + d.calls;
  into.builtin_calls <- into.builtin_calls + d.builtin_calls;
  into.branches <- into.branches + d.branches;
  into.flops_pragma_vec <- into.flops_pragma_vec + d.flops_pragma_vec;
  into.flops_autovec <- into.flops_autovec + d.flops_autovec;
  into.malloc_bytes <- into.malloc_bytes + d.malloc_bytes;
  into.extra_cycles <- into.extra_cycles + d.extra_cycles

(** True when no counter was ever bumped — the witness that an execution
    ran on the uninstrumented fast path. *)
let is_zero c =
  c.int_ops = 0 && c.float_adds = 0 && c.float_muls = 0 && c.float_divs = 0
  && c.loads = 0 && c.stores = 0 && c.l1_misses = 0 && c.l2_misses = 0
  && c.calls = 0 && c.builtin_calls = 0 && c.branches = 0
  && c.flops_pragma_vec = 0 && c.flops_autovec = 0 && c.malloc_bytes = 0
  && c.extra_cycles = 0

let total_flops c = c.float_adds + c.float_muls + c.float_divs

(** Total dynamic operations (the perf "instructions" proxy used when
    reproducing the paper's §4.3.2 instruction-count comparison).  A
    non-inlined call costs roughly a dozen instructions on x86-64: call,
    prologue/epilogue, argument and result moves, ret. *)
let total_ops c =
  c.int_ops + c.float_adds + c.float_muls + c.float_divs + c.loads + c.stores
  + (c.calls * 12)
  + c.builtin_calls + c.branches

let pp ppf c =
  Fmt.pf ppf
    "int=%d fadd=%d fmul=%d fdiv=%d ld=%d st=%d l1m=%d l2m=%d call=%d bcall=%d br=%d \
     vecp=%d veca=%d mall=%dB xc=%d"
    c.int_ops c.float_adds c.float_muls c.float_divs c.loads c.stores c.l1_misses
    c.l2_misses c.calls c.builtin_calls c.branches c.flops_pragma_vec c.flops_autovec
    c.malloc_bytes c.extra_cycles
