(** Benchmark harness: regenerates every figure of the paper's evaluation
    (Figs. 3–11) plus the ablations of DESIGN.md §5.

    Usage:
    {v
    dune exec bench/main.exe                 # all figures + ablations
    dune exec bench/main.exe -- --figure 3   # one figure
    dune exec bench/main.exe -- --ablation schedules
    dune exec bench/main.exe -- --quick      # small problem sizes
    dune exec bench/main.exe -- --micro      # bechamel microbenchmarks
    dune exec bench/main.exe -- --json       # also write BENCH_results.json
    v}

    Shapes to compare against the paper are recorded in EXPERIMENTS.md. *)

let pf fmt = Format.printf fmt

(* ------------------------------------------------------------------ *)
(* Figures *)

(* BENCH_results.json: one flat record per (figure, variant, cores) point,
   so plotting scripts and cross-run diffs need no nested traversal *)
let json_path = "BENCH_results.json"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* every record carries "kind": "modeled" numbers come from the simulated
   machine (deterministic), "measured" ones from wall-clock timing of real
   OCaml-domain execution (noisy) — ci/bench_diff applies a per-kind
   tolerance band when comparing runs *)
let record ~kind ~figure ~title ~unit ~variant ~cores ~value =
  Printf.sprintf
    "  {\"figure\": \"%s\", \"title\": \"%s\", \"unit\": \"%s\", \"kind\": \"%s\", \
     \"variant\": \"%s\", \"cores\": %d, \"seconds\": %.9g}"
    (json_escape figure) (json_escape title) (json_escape unit) (json_escape kind)
    (json_escape variant) cores value

let figure_records figures =
  let module F = Toolchain.Figures in
  List.concat_map
    (fun (f : F.figure) ->
      List.concat_map
        (fun (s : F.series) ->
          List.map
            (fun (cores, seconds) ->
              record ~kind:"modeled" ~figure:f.F.f_id ~title:f.F.f_title
                ~unit:f.F.f_unit ~variant:s.F.s_label ~cores ~value:seconds)
            s.F.s_points)
        f.F.f_series)
    figures

let write_json records =
  let oc = open_out_bin json_path in
  output_string oc ("[\n" ^ String.concat ",\n" records ^ "\n]\n");
  close_out oc;
  pf "wrote %d records to %s@." (List.length records) json_path

(* ------------------------------------------------------------------ *)
(* Measured multi-domain execution: the Fig. 3 matmul plan really runs on
   OCaml domains (cf. DESIGN.md §8) and we time the wall clock — the one
   series in BENCH_results.json that is an actual measurement rather than
   a model evaluation. *)

let best_of reps f =
  let b = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !b then b := t1 -. t0
  done;
  !b

let run_measured scale domains =
  let module F = Toolchain.Figures in
  let n = scale.F.matmul_n in
  let src = Workloads.Matmul.pure_source ~n () in
  let c = Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun x -> x)) src in
  let reps = 3 in
  pf "== measured: matmul n=%d executed on OCaml domains (best of %d) ==@." n reps;
  let seq = best_of reps (fun () -> ignore (Toolchain.Chain.execute c)) in
  let rows =
    List.map
      (fun d ->
        let t =
          if d <= 1 then seq
          else begin
            let pool = Runtime.Pool.create d in
            Fun.protect
              ~finally:(fun () -> Runtime.Pool.shutdown pool)
              (fun () -> best_of reps (fun () -> ignore (Toolchain.Chain.execute ~pool c)))
          end
        in
        let sp = seq /. t in
        pf "  %2d domain(s): %10.6f s   speedup %5.2fx@." d t sp;
        (d, t, sp))
      domains
  in
  let title = Printf.sprintf "matmul n=%d on OCaml domains" n in
  List.concat_map
    (fun (d, t, sp) ->
      [
        record ~kind:"measured" ~figure:"measured-domains" ~title ~unit:"seconds"
          ~variant:"wall-clock" ~cores:d ~value:t;
        record ~kind:"measured" ~figure:"measured-domains" ~title ~unit:"speedup"
          ~variant:"speedup-vs-seq" ~cores:d ~value:sp;
      ])
    rows

(* the same measurement on the PluTo-tiled inlined matmul: the interpreter
   dispatches whole tiles to the pool (tile-granular worksharing,
   DESIGN.md §10) instead of rows, so this series measures the tiled nest
   the racecheck engines replay via nested traces.  [--tile-grain false]
   reverts to outermost-statement dispatch for A/B comparison. *)
let run_measured_tiled ?(tile_grain = true) scale domains =
  let module F = Toolchain.Figures in
  let n = scale.F.matmul_n in
  let src = Workloads.Matmul.inlined_source ~n () in
  let mode =
    Toolchain.Chain.Plain_pluto (fun c -> { c with Pluto.tile = true; tile_sizes = [ 8 ] })
  in
  let c = Toolchain.Chain.compile ~mode src in
  let reps = 3 in
  pf "== measured: tiled matmul n=%d (tile 8) at tile granularity (best of %d) ==@." n reps;
  let seq = best_of reps (fun () -> ignore (Toolchain.Chain.execute ~tile_grain c)) in
  let rows =
    List.map
      (fun d ->
        let t =
          if d <= 1 then seq
          else begin
            let pool = Runtime.Pool.create d in
            Fun.protect
              ~finally:(fun () -> Runtime.Pool.shutdown pool)
              (fun () ->
                best_of reps (fun () ->
                    ignore (Toolchain.Chain.execute ~tile_grain ~pool c)))
          end
        in
        let sp = seq /. t in
        pf "  %2d domain(s): %10.6f s   speedup %5.2fx@." d t sp;
        (d, t, sp))
      domains
  in
  let title = Printf.sprintf "tiled matmul n=%d (tile 8) on OCaml domains" n in
  List.concat_map
    (fun (d, t, sp) ->
      [
        record ~kind:"measured" ~figure:"measured-tiled-domains" ~title ~unit:"seconds"
          ~variant:"wall-clock" ~cores:d ~value:t;
        record ~kind:"measured" ~figure:"measured-tiled-domains" ~title ~unit:"speedup"
          ~variant:"speedup-vs-seq" ~cores:d ~value:sp;
      ])
    rows

(* the reduction merge path (DESIGN.md §11): a reduction(+:s) dot product
   executed on the pool with per-chunk identity-seeded accumulators and a
   chunk-order merge.  Output is byte-identical to --jobs 1 for these
   exact operands, so the series measures the merge overhead alone. *)
let run_measured_reduction scale domains =
  let module F = Toolchain.Figures in
  let n = scale.F.matmul_n * scale.F.matmul_n in
  let src =
    Printf.sprintf
      {|
#include <stdio.h>
double a[%d];
double b[%d];
int main(void) {
  double s = 0.0;
  for (int i = 0; i < %d; i++) {
    a[i] = (i * 13 %% 101) * 0.5;
    b[i] = (i * 7 %% 97) * 0.25;
  }
#pragma omp parallel for reduction(+:s)
  for (int i = 0; i < %d; i++) {
    s += a[i] * b[i];
  }
  printf("dot %%.17g\n", s);
  return 0;
}
|}
      n n n n
  in
  let c = Toolchain.Chain.compile ~mode:Toolchain.Chain.Manual_omp src in
  let reps = 3 in
  pf "== measured: reduction(+:s) dot product n=%d on OCaml domains (best of %d) ==@." n
    reps;
  let seq = best_of reps (fun () -> ignore (Toolchain.Chain.execute c)) in
  let rows =
    List.map
      (fun d ->
        let t =
          if d <= 1 then seq
          else begin
            let pool = Runtime.Pool.create d in
            Fun.protect
              ~finally:(fun () -> Runtime.Pool.shutdown pool)
              (fun () -> best_of reps (fun () -> ignore (Toolchain.Chain.execute ~pool c)))
          end
        in
        let sp = seq /. t in
        pf "  %2d domain(s): %10.6f s   speedup %5.2fx@." d t sp;
        (d, t, sp))
      domains
  in
  let title = Printf.sprintf "reduction dot product n=%d on OCaml domains" n in
  List.concat_map
    (fun (d, t, sp) ->
      [
        record ~kind:"measured" ~figure:"measured-reduction-domains" ~title ~unit:"seconds"
          ~variant:"wall-clock" ~cores:d ~value:t;
        record ~kind:"measured" ~figure:"measured-reduction-domains" ~title ~unit:"speedup"
          ~variant:"speedup-vs-seq" ~cores:d ~value:sp;
      ])
    rows

(* the fast-path A/B (DESIGN.md §13): each workload goes through the full
   pure chain once, then [Interp.Exec.run_main] is timed on two pre-loaded
   interpreter instances — one Modeled, one Fast — so the series isolates
   raw interpretation speed: compile time is excluded, and every repetition
   goes through [Compile.reset_rt] exactly like a serve re-run would. *)
let run_measured_fastpath scale =
  let module F = Toolchain.Figures in
  (* single-core steady-state ratio: at the tiny --quick sizes the run is
     mostly startup (globals, first-touch allocation), which both engines
     share and which would dilute the interpreter-throughput ratio this
     series exists to track — so each workload gets a floor that keeps the
     inner loops dominant while staying CI-cheap *)
  let workloads =
    [
      ("matmul", Workloads.Matmul.pure_source ~n:(max scale.F.matmul_n 64) ());
      ( "heat",
        Workloads.Heat.pure_source ~n:(max scale.F.heat_n 64)
          ~t:(max scale.F.heat_t 8) () );
      ( "satellite",
        Workloads.Satellite.pure_source ~w:(max scale.F.sat_w 32)
          ~h:(max scale.F.sat_h 32)
          ~bands:(max scale.F.sat_bands 8) () );
      ( "lama",
        Workloads.Lama_app.pure_source
          ~rows:(max scale.F.lama_rows 2048)
          ~maxnnz:(max scale.F.lama_maxnnz 16)
          ~reps:(max scale.F.lama_reps 2) () );
    ]
  in
  let reps = 3 in
  pf "== measured: fast path vs instrumented interpreter, single core (best of %d) ==@."
    reps;
  List.concat_map
    (fun (name, src) ->
      let c = Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun x -> x)) src in
      let time instr =
        let cenv =
          Interp.Exec.load ~l1_bytes:Toolchain.Chain.scaled_l1_bytes
            ~l2_bytes:Toolchain.Chain.scaled_l2_bytes ~instr c.Toolchain.Chain.c_ast
        in
        best_of reps (fun () -> ignore (Interp.Exec.run_main cenv))
      in
      let tm = time Interp.Compile.Modeled in
      let tf = time Interp.Compile.Fast in
      let sp = tm /. tf in
      pf "  %-10s modeled %10.6f s   fast %10.6f s   speedup %6.2fx@." name tm tf sp;
      let title = Printf.sprintf "%s: instrumented vs fast interpretation" name in
      [
        record ~kind:"measured" ~figure:"measured-fastpath" ~title ~unit:"seconds"
          ~variant:(name ^ "-modeled") ~cores:1 ~value:tm;
        record ~kind:"measured" ~figure:"measured-fastpath" ~title ~unit:"seconds"
          ~variant:(name ^ "-fast") ~cores:1 ~value:tf;
        record ~kind:"measured" ~figure:"measured-fastpath" ~title ~unit:"speedup"
          ~variant:(name ^ "-speedup") ~cores:1 ~value:sp;
      ])
    workloads

(* the serve daemon's end-to-end throughput (DESIGN.md §12): a fixed
   32-request corpus of distinct inline run requests — distinct sources, so
   neither the TU cache nor the reply memo short-circuits the work — pushed
   through [Server.run_script] at 1/2/4/8 worker domains.  A fresh server
   per repetition keeps the caches cold; the series therefore measures
   parse + purity + execute + reply per request, i.e. what a build-server
   client would see. *)
let run_measured_serve domains =
  let module P = Serve.Protocol in
  let reqs = 32 in
  let source k =
    Printf.sprintf
      "#include <stdio.h>\n\
       int main(void) {\n\
      \  int s = 0;\n\
      \  for (int i = 0; i < 64; i++) s += i * %d;\n\
      \  printf(\"s %%d\\n\", s);\n\
      \  return 0;\n\
       }\n"
      k
  in
  let script =
    List.init reqs (fun k ->
        P.to_string
          (P.Obj
             [
               ("id", P.Str (Printf.sprintf "q%d" k));
               ("cmd", P.Str "run");
               ("source", P.Str (source (k + 1)));
               ("mode", P.Str "seq");
               ("cores", P.Arr [ P.Int 1 ]);
             ]))
  in
  let reps = 3 in
  pf "== measured: serve throughput, %d-request corpus (best of %d) ==@." reqs reps;
  let rows =
    List.map
      (fun d ->
        let t =
          best_of reps (fun () ->
              let srv = Serve.Server.create ~jobs:d () in
              Fun.protect
                ~finally:(fun () -> Serve.Server.shutdown srv)
                (fun () -> ignore (Serve.Server.run_script srv script)))
        in
        let rps = float_of_int reqs /. t in
        pf "  %2d domain(s): %10.6f s   %8.1f req/s@." d t rps;
        (d, t, rps))
      domains
  in
  let title = Printf.sprintf "serve daemon: %d distinct run requests" reqs in
  List.concat_map
    (fun (d, t, rps) ->
      [
        record ~kind:"measured" ~figure:"measured-serve-throughput" ~title ~unit:"seconds"
          ~variant:"wall-clock" ~cores:d ~value:t;
        record ~kind:"measured" ~figure:"measured-serve-throughput" ~title ~unit:"req/s"
          ~variant:"throughput" ~cores:d ~value:rps;
      ])
    rows

(* the work-stealing scheduler on a skewed load (DESIGN.md §14): a
   triangular nest whose iteration i does ~i*i/n units of work, executed by
   the uninstrumented fast engine.  Under schedule(static) the last
   contiguous block carries over twice the mean load, so the makespan is
   pinned to whichever stream drew it; under schedule(guided,1) the
   decaying grants sit in the deques, where the streams that drain early
   steal the loaded deque's pending grants.  The guided-over-static ratio
   at several domain counts is the scheduler's reason to exist;
   ci/bench_diff keeps it from regressing.  Output bytes are identical
   between the two clauses (each cell is written once), so the series
   times the schedule alone. *)
let run_measured_steal scale domains =
  let module F = Toolchain.Figures in
  let n = scale.F.matmul_n * 8 in
  let source clause =
    Printf.sprintf
      {|
#include <stdio.h>
double S[%d];
double W[%d];
int main(void) {
  for (int i = 0; i < %d; i++) {
    S[i] = ((i * 3) %% 17) * 0.5;
    W[i] = ((i * 11) %% 23) * 0.25;
  }
#pragma omp parallel for%s
  for (int i = 0; i < %d; i++) {
    double acc = S[i];
    for (int j = 0; j < (i * i) / %d; j++) {
      acc = acc * 0.5 + W[j %% %d] * 0.25;
    }
    S[i] = acc;
  }
  double s = 0.0;
  for (int i = 0; i < %d; i++) {
    s += S[i] * ((i %% 7) + 1);
  }
  printf("skew %%.17g\n", s);
  return 0;
}
|}
      n n n clause n n n n
  in
  let compile clause = Toolchain.Chain.compile ~mode:Toolchain.Chain.Manual_omp (source clause) in
  let c_static = compile "" in
  let c_guided = compile " schedule(guided,1)" in
  let reps = 3 in
  pf "== measured: skewed triangular nest n=%d, static vs guided stealing (best of %d) ==@."
    n reps;
  (* one modeled run per clause: the profile's Par segment carries the
     per-iteration costs and the schedule, so the machine model can give
     the deterministic d-core makespan of each clause — the speedup line
     below is a model evaluation, immune to the host's real core count
     (CI may be running on a single core, where wall-clock parallel
     speedup is physically unobservable) *)
  let prof_static = Toolchain.Chain.execute c_static in
  let prof_guided = Toolchain.Chain.execute c_guided in
  let sim prof d =
    (Machine.Model.simulate ~backend:Machine.Config.gcc ~n:d prof)
      .Machine.Model.r_seconds
  in
  let rows =
    List.map
      (fun d ->
        let time c =
          if d <= 1 then
            best_of reps (fun () -> ignore (Toolchain.Chain.execute ~no_model:true c))
          else begin
            let pool = Runtime.Pool.create d in
            Fun.protect
              ~finally:(fun () -> Runtime.Pool.shutdown pool)
              (fun () ->
                best_of reps (fun () ->
                    ignore (Toolchain.Chain.execute ~no_model:true ~pool c)))
          end
        in
        let ts = time c_static in
        let tg = time c_guided in
        let ss = sim prof_static d in
        let sg = sim prof_guided d in
        let sp = ss /. sg in
        pf
          "  %2d domain(s): wall static %8.6f s guided %8.6f s | simulated static \
           %.4g s guided %.4g s -> guided-over-static %5.2fx@."
          d ts tg ss sg sp;
        (d, ts, tg, ss, sg, sp))
      domains
  in
  let title = Printf.sprintf "skewed triangular nest n=%d: static vs guided" n in
  List.concat_map
    (fun (d, ts, tg, ss, sg, sp) ->
      [
        record ~kind:"measured" ~figure:"measured-steal-skew" ~title ~unit:"seconds"
          ~variant:"static" ~cores:d ~value:ts;
        record ~kind:"measured" ~figure:"measured-steal-skew" ~title ~unit:"seconds"
          ~variant:"guided" ~cores:d ~value:tg;
        record ~kind:"modeled" ~figure:"measured-steal-skew" ~title ~unit:"s"
          ~variant:"static-simulated" ~cores:d ~value:ss;
        record ~kind:"modeled" ~figure:"measured-steal-skew" ~title ~unit:"s"
          ~variant:"guided-simulated" ~cores:d ~value:sg;
        record ~kind:"modeled" ~figure:"measured-steal-skew" ~title ~unit:"speedup"
          ~variant:"guided-over-static" ~cores:d ~value:sp;
      ])
    rows

(* the inspector/executor runtime check on the irregular gathers: the
   inlined LAMA ELL SpMV (indirection only on reads, so the probe set is
   empty and the parallel executor dispatches) against a duplicate-write
   scatter of the same y[col[j]] shape (the probe finds the conflict and
   the run falls back to the byte-identical sequential order).  For each
   domain count we record the wall-clock of both, the machine-model
   makespan with the inspector charged into the critical path, and — for
   the conflicting scatter — the inspector overhead in percent: the
   conflicting run pays for the probe and then executes sequentially
   anyway, so its slowdown over the uninstrumented sequential run IS the
   cost of the check. *)
let run_measured_inspector scale domains =
  let module F = Toolchain.Figures in
  let rows = scale.F.lama_rows * 2 in
  let maxnnz = scale.F.lama_maxnnz in
  let spmv = Workloads.Lama_app.inspector_source ~rows ~maxnnz ~reps:1 () in
  let n = scale.F.matmul_n * 32 in
  let scatter =
    Printf.sprintf
      {|
#include <stdio.h>
int col[%d];
double y[%d];
double v[%d];
int main(void) {
  for (int i = 0; i < %d; i++) {
    col[i] = (i * 2) %% %d;
    v[i] = ((i * 3) %% 7) * 0.5;
    y[i] = 0.0;
  }
#pragma scop
  for (int j = 0; j < %d; j++) {
    y[col[j]] += v[j] * 2.0;
  }
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < %d; i++) {
    s += y[i] * ((i %% 7) + 1);
  }
  printf("scatter %%.17g\n", s);
  return 0;
}
|}
      n n n n (n / 2) n n
  in
  let mode = Toolchain.Chain.Plain_pluto (fun x -> x) in
  let c_spmv = Toolchain.Chain.compile ~mode spmv in
  let c_scat = Toolchain.Chain.compile ~mode scatter in
  let c_spmv_seq = Toolchain.Chain.compile ~mode:Toolchain.Chain.Sequential spmv in
  let c_scat_seq = Toolchain.Chain.compile ~mode:Toolchain.Chain.Sequential scatter in
  let reps = 3 in
  pf
    "== measured: inspector/executor — ELL SpMV rows=%d (disjoint) vs scatter n=%d \
     (conflict), best of %d ==@."
    rows n reps;
  (* the modeled profiles carry the runtime-check verdicts, so the
     simulated makespans below include the inspector cycles on the
     critical path — disjoint pays the check once and then forks, the
     conflict pays it and stays sequential *)
  let prof_spmv = Toolchain.Chain.execute c_spmv in
  let prof_scat = Toolchain.Chain.execute c_scat in
  let sim prof d =
    (Machine.Model.simulate ~backend:Machine.Config.gcc ~n:d prof)
      .Machine.Model.r_seconds
  in
  let seq_spmv =
    best_of reps (fun () -> ignore (Toolchain.Chain.execute ~no_model:true c_spmv_seq))
  in
  let seq_scat =
    best_of reps (fun () -> ignore (Toolchain.Chain.execute ~no_model:true c_scat_seq))
  in
  let rows_out =
    List.map
      (fun d ->
        let time c =
          if d <= 1 then
            best_of reps (fun () -> ignore (Toolchain.Chain.execute ~no_model:true c))
          else begin
            let pool = Runtime.Pool.create d in
            Fun.protect
              ~finally:(fun () -> Runtime.Pool.shutdown pool)
              (fun () ->
                best_of reps (fun () ->
                    ignore (Toolchain.Chain.execute ~no_model:true ~pool c)))
          end
        in
        let ts = time c_spmv in
        let tc = time c_scat in
        let ms = sim prof_spmv d in
        let mc = sim prof_scat d in
        let overhead = (tc /. seq_scat -. 1.0) *. 100.0 in
        pf
          "  %2d domain(s): spmv wall %8.6f s (seq %8.6f) scatter wall %8.6f s (seq \
           %8.6f, inspector overhead %5.1f%%) | simulated spmv %.4g s scatter %.4g s@."
          d ts seq_spmv tc seq_scat overhead ms mc;
        (d, ts, tc, ms, mc, overhead))
      domains
  in
  let title =
    Printf.sprintf "inspector/executor: ELL SpMV rows=%d vs conflicting scatter n=%d"
      rows n
  in
  List.concat_map
    (fun (d, ts, tc, ms, mc, overhead) ->
      [
        record ~kind:"measured" ~figure:"measured-inspector" ~title ~unit:"seconds"
          ~variant:"spmv-disjoint" ~cores:d ~value:ts;
        record ~kind:"measured" ~figure:"measured-inspector" ~title ~unit:"seconds"
          ~variant:"scatter-conflict" ~cores:d ~value:tc;
        record ~kind:"modeled" ~figure:"measured-inspector" ~title ~unit:"s"
          ~variant:"spmv-simulated" ~cores:d ~value:ms;
        record ~kind:"modeled" ~figure:"measured-inspector" ~title ~unit:"s"
          ~variant:"scatter-simulated" ~cores:d ~value:mc;
        record ~kind:"measured" ~figure:"measured-inspector" ~title ~unit:"percent"
          ~variant:"inspector-overhead" ~cores:d ~value:overhead;
      ])
    rows_out

let run_figures scale which ~json ~domains ~tile_grain =
  let module F = Toolchain.Figures in
  let wants id = match which with None -> true | Some w -> w = id in
  let matmul = lazy (F.matmul_dataset scale) in
  let heat = lazy (F.heat_dataset scale) in
  let satellite = lazy (F.satellite_dataset scale) in
  let lama = lazy (F.lama_dataset scale) in
  let figures =
    [
      (3, fun () -> F.fig3 ~scale ~matmul:(Lazy.force matmul) ());
      (4, fun () -> F.fig4 ~scale ~matmul:(Lazy.force matmul) ());
      (5, fun () -> F.fig5 ~scale ~matmul:(Lazy.force matmul) ());
      (6, fun () -> F.fig6 ~scale ~heat:(Lazy.force heat) ());
      (7, fun () -> F.fig7 ~scale ~heat:(Lazy.force heat) ());
      (8, fun () -> F.fig8 ~scale ~satellite:(Lazy.force satellite) ());
      (9, fun () -> F.fig9 ~scale ~satellite:(Lazy.force satellite) ());
      (10, fun () -> F.fig10 ~scale ~lama:(Lazy.force lama) ());
      (11, fun () -> F.fig11 ~scale ~lama:(Lazy.force lama) ());
    ]
  in
  let rendered =
    List.filter_map
      (fun (id, mk) ->
        if wants id then begin
          let fig = mk () in
          pf "%a@." (fun ppf f -> F.render_figure ppf f) fig;
          Some fig
        end
        else None)
      figures
  in
  if json then begin
    let measured = run_measured scale domains in
    let tiled = run_measured_tiled ~tile_grain scale domains in
    let reduction = run_measured_reduction scale domains in
    let fastpath = run_measured_fastpath scale in
    let serve = run_measured_serve domains in
    let steal = run_measured_steal scale domains in
    let inspector = run_measured_inspector scale domains in
    write_json
      (figure_records rendered @ measured @ tiled @ reduction @ fastpath @ serve @ steal
      @ inspector)
  end;
  (* correctness cross-check printed alongside the data *)
  let check name d =
    pf "checksums %s: all variants agree = %b@." name (F.checksums_agree d)
  in
  if Lazy.is_val matmul then check "matmul" (Lazy.force matmul);
  if Lazy.is_val heat then check "heat" (Lazy.force heat);
  if Lazy.is_val satellite then check "satellite" (Lazy.force satellite);
  if Lazy.is_val lama then check "lama" (Lazy.force lama)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5) *)

let cores = Toolchain.Figures.paper_cores

let sweep_str profile backend =
  String.concat " "
    (List.map
       (fun n ->
         Printf.sprintf "%8.4f"
           (Machine.Model.simulate ~backend ~n profile).Machine.Model.r_seconds)
       cores)

let gcc = Machine.Config.gcc

(* PC-PrePro + GCC-E before handing source to the parser *)
let preprocess src =
  let stripped = Cpp.Pc_prepro.strip src in
  Cpp.Preproc.run (Cpp.Preproc.create ()) stripped.Cpp.Pc_prepro.source

(* no-pure: how many scops does PluTo alone parallelize across the four
   pure-annotated codes when the purity stage is skipped? *)
let ablation_no_pure scale =
  pf "== ablation no-pure: PluTo without the purity stage ==@.";
  let sources =
    [
      ("matmul", Workloads.Matmul.pure_source ~n:scale.Toolchain.Figures.matmul_n ());
      ( "heat",
        Workloads.Heat.pure_source ~n:scale.Toolchain.Figures.heat_n
          ~t:scale.Toolchain.Figures.heat_t () );
      ( "satellite",
        Workloads.Satellite.pure_source ~w:scale.Toolchain.Figures.sat_w
          ~h:scale.Toolchain.Figures.sat_h ~bands:scale.Toolchain.Figures.sat_bands () );
      ( "lama",
        Workloads.Lama_app.pure_source ~rows:scale.Toolchain.Figures.lama_rows
          ~maxnnz:scale.Toolchain.Figures.lama_maxnnz
          ~reps:scale.Toolchain.Figures.lama_reps () );
    ]
  in
  List.iter
    (fun (name, src) ->
      (* mark scops with the purity info, then run PluTo with and without
         the pure-call substitution: every region that needs it must be
         rejected in the second run *)
      let reporter = Support.Diag.create_reporter () in
      let prog = Cfront.Parser.program_of_string (preprocess src) in
      let registry = Purity.Purity_check.check_program ~reporter prog in
      let marked = Purity.Scop_marker.mark ~registry ~reporter prog in
      let with_hiding =
        Pluto.run ~config:{ Pluto.default_config with hide_pure_calls = Some registry } marked
      in
      let without_hiding = Pluto.run ~config:Pluto.default_config marked in
      let count (_, outcomes) = Pluto.summarize outcomes in
      let p_with, r_with = count with_hiding in
      let p_without, r_without = count without_hiding in
      pf "  %-10s with pure: %d parallelized / %d rejected; without: %d / %d@." name
        p_with r_with p_without r_without)
    sources

(* no-malloc-pure: remove malloc/free from the whitelist *)
let ablation_no_malloc scale =
  pf "== ablation no-malloc-pure: malloc removed from the pure whitelist ==@.";
  let src = Workloads.Matmul.pure_source ~n:scale.Toolchain.Figures.matmul_n () in
  let run_with_registry allow_malloc =
    let reporter = Support.Diag.create_reporter () in
    let prog = Cfront.Parser.program_of_string (preprocess src) in
    let registry = Purity.Registry.create ~allow_malloc () in
    let registry = Purity.Purity_check.check_program ~registry ~reporter prog in
    let marked = Purity.Scop_marker.mark ~registry ~reporter prog in
    let transformed, outcomes =
      Pluto.run ~config:{ Pluto.default_config with hide_pure_calls = Some registry } marked
    in
    let profile =
      Interp.Exec.run ~l1_bytes:Toolchain.Chain.scaled_l1_bytes
        ~l2_bytes:Toolchain.Chain.scaled_l2_bytes transformed
    in
    let par, rej = Pluto.summarize outcomes in
    (profile, par, rej)
  in
  let with_malloc, p1, r1 = run_with_registry true in
  let without_malloc, p2, r2 = run_with_registry false in
  pf "  whitelist with malloc:    %d parallelized / %d rejected, time@cores: %s@." p1 r1
    (sweep_str with_malloc gcc);
  pf "  whitelist without malloc: %d parallelized / %d rejected, time@cores: %s@." p2 r2
    (sweep_str without_malloc gcc)

(* schedules: static vs dynamic on the imbalanced satellite *)
let ablation_schedules scale =
  pf "== ablation schedules: static vs dynamic on the imbalanced filter ==@.";
  let src =
    Workloads.Satellite.pure_source ~w:scale.Toolchain.Figures.sat_w
      ~h:scale.Toolchain.Figures.sat_h ~bands:scale.Toolchain.Figures.sat_bands ()
  in
  List.iter
    (fun (label, clause) ->
      let mode =
        Toolchain.Chain.Pure_chain (fun c -> { c with Pluto.schedule_clause = clause })
      in
      let _, profile = Toolchain.Chain.run ~mode src in
      pf "  %-16s %s@." label (sweep_str profile gcc))
    [
      ("static", None);
      ("static,1", Some "static,1");
      ("dynamic,1", Some "dynamic,1");
      ("dynamic,4", Some "dynamic,4");
    ]

(* sica-tiles: cache-aware tile sizes vs fixed sizes on the inlined matmul *)
let ablation_sica_tiles scale =
  pf "== ablation sica-tiles: tile-size choice on the inlined matmul ==@.";
  let src = Workloads.Matmul.inlined_source ~n:scale.Toolchain.Figures.matmul_n () in
  List.iter
    (fun (label, adjust) ->
      let _, profile = Toolchain.Chain.run ~mode:(Toolchain.Chain.Plain_pluto adjust) src in
      pf "  %-20s %s@." label (sweep_str profile gcc))
    [
      ("untiled", fun (c : Pluto.config) -> c);
      ("fixed 8", fun c -> { c with Pluto.tile = true; tile_sizes = [ 8 ] });
      ("fixed 16", fun c -> { c with Pluto.tile = true; tile_sizes = [ 16 ] });
      ("fixed 64", fun c -> { c with Pluto.tile = true; tile_sizes = [ 64 ] });
      ( "sica cache-aware",
        fun c -> { c with Pluto.sica = true; sica_cache = Toolchain.Chain.scaled_sica_cache }
      );
    ]

(* inline: the paper's §4.3.2 instruction-count comparison *)
let ablation_inline scale =
  pf "== ablation inline: pure call vs inlined stencil (paper 4.3.2) ==@.";
  let n = scale.Toolchain.Figures.heat_n and t = scale.Toolchain.Figures.heat_t in
  let run mode src = snd (Toolchain.Chain.run ~mode src) in
  let pure_p =
    run (Toolchain.Chain.Pure_chain (fun c -> c)) (Workloads.Heat.pure_source ~n ~t ())
  in
  let inl_p =
    run (Toolchain.Chain.Plain_pluto (fun c -> c)) (Workloads.Heat.inlined_source ~n ~t ())
  in
  let ops p = Interp.Cost.total_ops (Interp.Trace.total_cost p) in
  let op_pure = ops pure_p and op_inl = ops inl_p in
  pf "  dynamic ops: pure-call %d, inlined %d, ratio %.2f (paper: 87.8G vs 47.5G = 1.85)@."
    op_pure op_inl
    (float_of_int op_pure /. float_of_int op_inl)

let run_ablations scale which =
  let all = which = None in
  let wants name = all || which = Some name in
  if wants "no-pure" then ablation_no_pure scale;
  if wants "no-malloc-pure" then ablation_no_malloc scale;
  if wants "schedules" then ablation_schedules scale;
  if wants "sica-tiles" then ablation_sica_tiles scale;
  if wants "inline" then ablation_inline scale

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the toolchain itself *)

let run_micro () =
  let open Bechamel in
  let src = Workloads.Matmul.pure_source ~n:24 () in
  let prog = lazy (Cfront.Parser.program_of_string src) in
  let tests =
    Test.make_grouped ~name:"toolchain"
      [
        Test.make ~name:"parse-matmul"
          (Staged.stage (fun () -> ignore (Cfront.Parser.program_of_string src)));
        Test.make ~name:"purity-check"
          (Staged.stage (fun () ->
               let reporter = Support.Diag.create_reporter () in
               ignore (Purity.Purity_check.check_program ~reporter (Lazy.force prog))));
        Test.make ~name:"full-chain-compile"
          (Staged.stage (fun () ->
               ignore
                 (Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c))
                    src)));
        Test.make ~name:"interp-run-n24"
          (Staged.stage (fun () ->
               ignore (Toolchain.Chain.run ~mode:Toolchain.Chain.Sequential src)));
      ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances tests in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> pf "  micro %-32s %12.1f ns/run@." name est
        | _ -> pf "  micro %-32s (no estimate)@." name)
      results
  in
  benchmark ()

(* ------------------------------------------------------------------ *)

let () =
  let figure = ref None in
  let ablation = ref None in
  let quick = ref false in
  let micro = ref false in
  let json = ref false in
  let only_ablations = ref false in
  let domains = ref [ 1; 2; 4; 8 ] in
  let tile_grain = ref true in
  let rec parse = function
    | [] -> ()
    | "--figure" :: v :: rest ->
      figure := Some (int_of_string v);
      parse rest
    | "--cores" :: v :: rest ->
      (* domain counts for the measured series, e.g. --cores 1,2,4 *)
      domains := List.map int_of_string (String.split_on_char ',' v);
      parse rest
    | "--tile-grain" :: v :: rest ->
      (* dispatch whole tiles (true, default) or only outermost statements
         (false) in the measured tiled series *)
      tile_grain := bool_of_string v;
      parse rest
    | "--ablation" :: v :: rest ->
      ablation := Some v;
      only_ablations := true;
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--micro" :: rest ->
      micro := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | arg :: rest ->
      Printf.eprintf "unknown argument %s\n" arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scale =
    if !quick then Toolchain.Figures.test_scale else Toolchain.Figures.default_scale
  in
  if !micro then begin
    run_micro ();
    let measured = run_measured scale !domains in
    let tiled = run_measured_tiled ~tile_grain:!tile_grain scale !domains in
    let reduction = run_measured_reduction scale !domains in
    let fastpath = run_measured_fastpath scale in
    let serve = run_measured_serve !domains in
    let steal = run_measured_steal scale !domains in
    let inspector = run_measured_inspector scale !domains in
    if !json then
      write_json (measured @ tiled @ reduction @ fastpath @ serve @ steal @ inspector)
  end
  else if !only_ablations then run_ablations scale !ablation
  else begin
    pf "Pure Functions in C — evaluation reproduction (scaled sizes, simulated %s)@."
      Machine.Config.opteron64.Machine.Config.m_name;
    pf "@.";
    run_figures scale !figure ~json:!json ~domains:!domains ~tile_grain:!tile_grain;
    match !figure with None -> run_ablations scale None | Some _ -> ()
  end
