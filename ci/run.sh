#!/bin/sh
# CI entry point: build, run the full test suite, then the differential
# fuzzing smoke campaign (500 seeded programs through every pipeline
# configuration), the race-detector smoke pass (happens-before replay
# over every workload plus 100 fuzzed programs; see TESTING.md), the
# lockset second-opinion smoke (both race engines cross-checked over the
# antidiag inject witness and one CSR/triangular fuzz seed), and the
# tile-granular smoke (a PluTo-tiled kernel executed on 2 domains,
# racechecked clean via nested traces, plus one tileable fuzz seed), and
# the reduction smoke (a reduction(+:s) dot product on 2 domains, the
# critical-guarded/unguarded racecheck pair, plus one fuzz seed carrying
# the reduction and critical-update grammar shapes), and the serve smoke
# (a 5-request JSONL script — compile/run/racecheck/malformed/stats —
# piped through the `purec serve` daemon with per-reply assertions), and
# the fast-path smoke (`purec run --no-model` over the reduction and
# tiled workloads on 2 domains plus a 50-program fuzz slice whose oracle
# cross-checks the fast configurations against the modeled engines), and
# the steal smoke (the skewed triangular nest executed on 2 and 4
# domains under schedule(guided,1) through the work-stealing deques,
# racechecked clean under a guided plan, plus one fuzz seed carrying the
# skewed-nest grammar shape and the oracle's guided twins), and the
# inspector smoke (the permutation gather executed on 2 domains through
# the runtime disjointness check, the duplicate-write gather falling
# back to the sequential order, the gather gallery and LAMA ELL SpMV
# racechecked clean, plus one fuzz seed carrying the indirect-write
# gather grammar shape through the oracle).
#
# Last comes the benchmark regression gate: a quick bench run must stay
# inside the per-record tolerance bands of the committed baseline
# (ci/bench_baseline.json; modeled records +/-30%, measured wall-clock
# records x4 — see ci/bench_diff.ml).  Refresh the baseline with
#   dune exec bench/main.exe -- --quick --json && cp BENCH_results.json ci/bench_baseline.json
# when a perf change is intentional.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @fuzz-smoke
dune build @race-smoke
dune build @lockset-smoke
dune build @tile-smoke
dune build @reduction-smoke
dune build @serve-smoke
dune build @fastpath-smoke
dune build @steal-smoke
dune build @inspector-smoke
dune exec bench/main.exe -- --quick --json > /dev/null
dune exec ci/bench_diff.exe -- ci/bench_baseline.json BENCH_results.json
