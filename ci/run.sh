#!/bin/sh
# CI entry point: build, run the full test suite, then the differential
# fuzzing smoke campaign (500 seeded programs through every pipeline
# configuration) and the race-detector smoke pass (happens-before replay
# over every workload plus 100 fuzzed programs; see TESTING.md).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @fuzz-smoke
dune build @race-smoke
