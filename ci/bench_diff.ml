(** BENCH_results.json regression gate.

    Usage: [bench_diff baseline.json current.json]

    Every record of the baseline must exist in the current run (keyed by
    figure/unit/variant/cores) and lie inside its tolerance band:

    - ["modeled"] records come from the deterministic machine model, so
      the band is tight: +/-30% relative (any drift means the model or
      the compiler chain changed behaviour).
    - ["measured"] records are wall-clock timings of real domain
      execution and inherit scheduler noise plus host variability; with
      best-of-3 repetitions on every series the residual spread is well
      under 2x in practice, so the band is a factor of 4 (it started at
      8 before the fast-path work forced the reps discipline onto every
      measured series).

    A violation only counts as a regression in the *worse* direction:
    larger for time-like units, smaller for ["speedup"] and ["req/s"].
    Records missing
    from the current run fail hard.  A record new in the current run is
    reported but accepted only when its series (figure/unit/variant) is
    already in the baseline (e.g. an extra cores point); a whole series
    the baseline has never seen fails hard — an ungated series is a
    silent pass, so the baseline must be seeded in the same change that
    adds the series.

    The format is the flat one-record-per-line JSON that bench/main.ml
    emits; the parser below is deliberately a line scanner so the gate
    has no dependencies outside the stdlib. *)

type record = {
  r_figure : string;
  r_unit : string;
  r_kind : string;
  r_variant : string;
  r_cores : int;
  r_value : float;
}

let read_file path =
  let ic = try open_in_bin path with Sys_error m -> failwith m in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* value of ["key": "..."] in [line], if present *)
let string_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let buf = Buffer.create 16 in
    let rec scan i =
      if i >= llen then None
      else
        match line.[i] with
        | '"' -> Some (Buffer.contents buf)
        | '\\' when i + 1 < llen ->
          (* bench escapes quotes, backslashes and newlines; unescape those *)
          (match line.[i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | c -> Buffer.add_char buf c);
          scan (i + 2)
        | c ->
          Buffer.add_char buf c;
          scan (i + 1)
    in
    scan start

(* value of ["key": 123.4] in [line], if present *)
let number_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < llen
      && (match line.[!stop] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr stop
    done;
    if !stop = start then None
    else float_of_string_opt (String.sub line start (!stop - start))

let parse_records path =
  let text = read_file path in
  List.filter_map
    (fun line ->
      match
        ( string_field line "figure",
          string_field line "unit",
          string_field line "variant",
          number_field line "cores",
          number_field line "seconds" )
      with
      | Some fig, Some unit_, Some variant, Some cores, Some value ->
        let kind = Option.value ~default:"modeled" (string_field line "kind") in
        Some
          {
            r_figure = fig;
            r_unit = unit_;
            r_kind = kind;
            r_variant = variant;
            r_cores = int_of_float cores;
            r_value = value;
          }
      | _ -> None)
    (String.split_on_char '\n' text)

let key r = Printf.sprintf "%s|%s|%s|cores=%d" r.r_figure r.r_unit r.r_variant r.r_cores

(* a series is every cores-point of one (figure, unit, variant) line *)
let series r = Printf.sprintf "%s|%s|%s" r.r_figure r.r_unit r.r_variant

(* higher-is-better units regress downward; everything else upward *)
let higher_is_better r = r.r_unit = "speedup" || r.r_unit = "req/s"

(* [Some msg] when [cur] regresses past the band of [base] *)
let regression base cur =
  let worse =
    if higher_is_better base then cur.r_value < base.r_value
    else cur.r_value > base.r_value
  in
  if not worse then None
  else
    match base.r_kind with
    | "measured" ->
      let factor = 4.0 in
      let bad =
        if higher_is_better base then cur.r_value < base.r_value /. factor
        else cur.r_value > base.r_value *. factor
      in
      if bad then
        Some
          (Printf.sprintf "measured %.6g -> %.6g (beyond x%g band)" base.r_value
             cur.r_value factor)
      else None
    | _ ->
      let tol = 0.30 in
      let scale = Float.max (Float.abs base.r_value) 1e-12 in
      let rel = Float.abs (cur.r_value -. base.r_value) /. scale in
      if rel > tol then
        Some
          (Printf.sprintf "modeled %.6g -> %.6g (%.0f%% beyond %.0f%% band)"
             base.r_value cur.r_value (rel *. 100.) (tol *. 100.))
      else None

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
      prerr_endline "usage: bench_diff BASELINE.json CURRENT.json";
      exit 2
  in
  let baseline = parse_records baseline_path in
  let current = parse_records current_path in
  if baseline = [] then begin
    Printf.eprintf "bench_diff: no records in baseline %s\n" baseline_path;
    exit 2
  end;
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace cur_tbl (key r) r) current;
  let base_keys = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace base_keys (key r) ()) baseline;
  let failures = ref 0 in
  List.iter
    (fun b ->
      match Hashtbl.find_opt cur_tbl (key b) with
      | None ->
        incr failures;
        Printf.printf "FAIL %s: record missing from current run\n" (key b)
      | Some c -> (
        match regression b c with
        | Some msg ->
          incr failures;
          Printf.printf "FAIL %s: %s\n" (key b) msg
        | None -> ()))
    baseline;
  let base_series = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace base_series (series r) ()) baseline;
  let fresh =
    List.filter (fun r -> not (Hashtbl.mem base_keys (key r))) current
  in
  (* a whole series the baseline has never seen would dodge the gate
     forever: hard failure until ci/bench_baseline.json is reseeded *)
  let unseeded =
    List.sort_uniq compare
      (List.filter_map
         (fun r -> if Hashtbl.mem base_series (series r) then None else Some (series r))
         fresh)
  in
  List.iter
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s: series absent from baseline (reseed ci/bench_baseline.json)\n" s)
    unseeded;
  List.iter
    (fun r ->
      if Hashtbl.mem base_series (series r) then
        Printf.printf "note %s: new record (not in baseline)\n" (key r))
    fresh;
  Printf.printf "bench_diff: %d baseline records, %d regression(s), %d new\n"
    (List.length baseline) !failures (List.length fresh);
  exit (if !failures > 0 then 1 else 0)
